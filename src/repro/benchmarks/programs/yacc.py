"""``yacc`` — a table-driven LR parser, standing in for the Unix parser
generator.

What a yacc-generated parser spends its time on is exactly what this
program does: walking an LR automaton with ACTION/GOTO table lookups,
pushing and popping state/value stacks, and dispatching on reduce rules.
We hard-code the canonical SLR(1) tables for the dragon-book expression
grammar (E -> E+T | T;  T -> T*F | F;  F -> (E) | id) and drive them with
randomly generated valid token streams.  This is the least parallel
benchmark in the paper (1.6), and the serial stack/table dependences here
reproduce that: almost every instruction depends on the one before it.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N_SENTENCES = 40
_N_PASSES = 3
_DEPTH = 2
_MOD = 999999937
_VMOD = 10007

# terminals: id + * ( ) $
_ID, _PLUS, _MUL, _LP, _RP, _END = range(6)

# ACTION encoding: 0 = error, 100+s = shift s, 200+p = reduce p, 999 = accept
_S, _R, _ACC = 100, 200, 999
_ACTION = [
    # id        +         *         (         )         $
    [_S + 5,    0,        0,        _S + 4,   0,        0],      # 0
    [0,         _S + 6,   0,        0,        0,        _ACC],   # 1
    [0,         _R + 2,   _S + 7,   0,        _R + 2,   _R + 2], # 2
    [0,         _R + 4,   _R + 4,   0,        _R + 4,   _R + 4], # 3
    [_S + 5,    0,        0,        _S + 4,   0,        0],      # 4
    [0,         _R + 6,   _R + 6,   0,        _R + 6,   _R + 6], # 5
    [_S + 5,    0,        0,        _S + 4,   0,        0],      # 6
    [_S + 5,    0,        0,        _S + 4,   0,        0],      # 7
    [0,         _S + 6,   0,        0,        _S + 11,  0],      # 8
    [0,         _R + 1,   _S + 7,   0,        _R + 1,   _R + 1], # 9
    [0,         _R + 3,   _R + 3,   0,        _R + 3,   _R + 3], # 10
    [0,         _R + 5,   _R + 5,   0,        _R + 5,   _R + 5], # 11
]
# GOTO[state][nonterminal E=0 T=1 F=2], 0 = error
_GOTO = [
    [1, 2, 3], [0, 0, 0], [0, 0, 0], [0, 0, 0],
    [8, 2, 3], [0, 0, 0], [0, 9, 3], [0, 0, 10],
    [0, 0, 0], [0, 0, 0], [0, 0, 0], [0, 0, 0],
]
#: production -> (pop length, lhs nonterminal index)
_PRODS = [(0, 0), (3, 0), (1, 0), (3, 1), (1, 1), (3, 2), (1, 2)]

_action_flat = ",".join(str(v) for row in _ACTION for v in row)
_goto_flat = ",".join(str(v) for row in _GOTO for v in row)
_plen_flat = ",".join(str(p[0]) for p in _PRODS)
_plhs_flat = ",".join(str(p[1]) for p in _PRODS)

SOURCE = f"""
# yacc: SLR(1) expression parser driven by ACTION/GOTO tables
const NSENT = {_N_SENTENCES};
const NPASS = {_N_PASSES};
const DEPTH = {_DEPTH};
const MOD = {_MOD};
const VMOD = {_VMOD};
const TID = 0;
const TPLUS = 1;
const TMUL = 2;
const TLP = 3;
const TRP = 4;
const TEND = 5;

var action: int[72] = {{{_action_flat}}};
var goto_: int[36] = {{{_goto_flat}}};
var plen: int[7] = {{{_plen_flat}}};
var plhs: int[7] = {{{_plhs_flat}}};

var tok: int[4096];
var tval: int[4096];
var tpos: int;
var sbeg: int[{_N_SENTENCES}];
var sstk: int[128];
var vstk: int[128];
var seed: int;

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

proc emit(t: int, v: int) {{
    tok[tpos] = t;
    tval[tpos] = v;
    tpos = tpos + 1;
}}

proc gen_factor(d: int) {{
    if (d > 0 && rnd(4) == 0) {{
        emit(TLP, 0);
        gen_expr(d - 1);
        emit(TRP, 0);
    }} else {{
        emit(TID, rnd(VMOD));
    }}
}}

proc gen_term(d: int) {{
    var j, k: int;
    gen_factor(d);
    k = rnd(3);
    for j = 1 to k {{
        emit(TMUL, 0);
        gen_factor(d);
    }}
}}

proc gen_expr(d: int) {{
    var j, k: int;
    gen_term(d);
    k = rnd(3);
    for j = 1 to k {{
        emit(TPLUS, 0);
        gen_term(d);
    }}
}}

# parse one sentence starting at tok[start];
# returns value * 1000 + number of reductions
proc parse(start: int): int {{
    var sp, pos, state, act, prod, n, lhs, val, reductions: int;
    sp = 0;
    sstk[0] = 0;
    vstk[0] = 0;
    pos = start;
    reductions = 0;
    act = 0;
    while (act != 999) {{
        state = sstk[sp];
        act = action[state * 6 + tok[pos]];
        if (act >= 100 && act < 200) {{
            sp = sp + 1;
            sstk[sp] = act - 100;
            vstk[sp] = tval[pos];
            pos = pos + 1;
        }} else {{
            if (act >= 200 && act < 300) {{
                prod = act - 200;
                n = plen[prod];
                lhs = plhs[prod];
                if (prod == 1) {{
                    val = (vstk[sp - 2] + vstk[sp]) % VMOD;
                }} else {{
                    if (prod == 3) {{
                        val = (vstk[sp - 2] * vstk[sp]) % VMOD;
                    }} else {{
                        if (prod == 5) {{
                            val = vstk[sp - 1];
                        }} else {{
                            val = vstk[sp];
                        }}
                    }}
                }}
                sp = sp - n;
                sp = sp + 1;
                sstk[sp] = goto_[sstk[sp - 1] * 3 + lhs];
                vstk[sp] = val;
                reductions = reductions + 1;
            }} else {{
                if (act != 999) {{
                    return -1;   # parse error: cannot happen
                }}
            }}
        }}
    }}
    return vstk[sp] * 1000 + reductions;
}}

proc main(): int {{
    var s, pass, chk: int;
    seed = 271828182;
    chk = 0;
    tpos = 0;
    for s = 0 to NSENT - 1 {{
        sbeg[s] = tpos;
        gen_expr(DEPTH);
        emit(TEND, 0);
    }}
    for pass = 1 to NPASS {{
        for s = 0 to NSENT - 1 {{
            chk = (chk * 31 + parse(sbeg[s])) % MOD;
        }}
    }}
    return chk;
}}
"""


def reference() -> int:
    """Pure-Python mirror of the Tin parser."""
    seed = 271828182

    def rnd(m: int) -> int:
        nonlocal seed
        seed = (seed * 1103515245 + 12345) % 2147483648
        return seed % m

    chk = 0
    sentences: list[list[tuple[int, int]]] = []
    for _ in range(_N_SENTENCES):
        toks: list[tuple[int, int]] = []

        def gen_factor(d: int) -> None:
            if d > 0 and rnd(4) == 0:
                toks.append((_LP, 0))
                gen_expr(d - 1)
                toks.append((_RP, 0))
            else:
                toks.append((_ID, rnd(_VMOD)))

        def gen_term(d: int) -> None:
            gen_factor(d)
            for _j in range(rnd(3)):
                toks.append((_MUL, 0))
                gen_factor(d)

        def gen_expr(d: int) -> None:
            gen_term(d)
            for _j in range(rnd(3)):
                toks.append((_PLUS, 0))
                gen_term(d)

        gen_expr(_DEPTH)
        toks.append((_END, 0))
        sentences.append(toks)

    def parse(toks: list[tuple[int, int]]) -> int:
        sstk = [0]
        vstk = [0]
        pos = 0
        reductions = 0
        result = None
        while result is None:
            state = sstk[-1]
            act = _ACTION[state][toks[pos][0]]
            if 100 <= act < 200:
                sstk.append(act - 100)
                vstk.append(toks[pos][1])
                pos += 1
            elif 200 <= act < 300:
                prod = act - 200
                n, lhs = _PRODS[prod]
                if prod == 1:
                    val = (vstk[-3] + vstk[-1]) % _VMOD
                elif prod == 3:
                    val = (vstk[-3] * vstk[-1]) % _VMOD
                elif prod == 5:
                    val = vstk[-2]
                else:
                    val = vstk[-1]
                del sstk[len(sstk) - n:]
                del vstk[len(vstk) - n:]
                sstk.append(_GOTO[sstk[-1]][lhs])
                vstk.append(val)
                reductions += 1
            elif act == _ACC:
                result = vstk[-1] * 1000 + reductions
            else:  # pragma: no cover - generated sentences always parse
                result = -1
        return result

    for _ in range(_N_PASSES):
        for toks in sentences:
            chk = (chk * 31 + parse(toks)) % _MOD
    return chk


register(
    Benchmark(
        name="yacc",
        description="SLR(1) table-driven parser over generated sentences "
        "(stands in for the Unix parser generator)",
        source=lambda: SOURCE,
        reference=reference,
    )
)

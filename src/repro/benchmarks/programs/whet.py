"""``whet`` — a Whetstone-like floating-point benchmark.

Follows the module structure of the classic Whetstone program: array
arithmetic with the damping constant t = 0.499975, trigonometric and
exponential modules, and procedure-call modules.  The transcendental
functions are computed *in Tin* by truncated series (sin/cos/atan Taylor
series, exp/log series, Newton square root) — which reproduces Whetstone's
long dependent floating-point chains through our own code rather than a
library call.

The checksum is the sum of scaled module results truncated to an integer;
the scale is coarse enough that careful-unrolling reassociation (1e-13
relative error) cannot change it.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N1 = 40     # array arithmetic iterations
_N2 = 30
_N3 = 12     # trig module iterations
_N6 = 12     # exp/log module iterations
_N7 = 40     # procedure-call module iterations

SOURCE = f"""
# whet: Whetstone-like floating point modules
const T = 0.499975;
const T1 = 0.50025;
const T2 = 2.0;
const HALFPI = 1.5707963267948966;
const N1 = {_N1};
const N2 = {_N2};
const N3 = {_N3};
const N6 = {_N6};
const N7 = {_N7};

var e1: float[4];
var acc: float;

# sin by Taylor series (|x| < 2)
proc my_sin(x: float): float {{
    var term, s, x2: float;
    var k: int;
    term = x;
    s = x;
    x2 = x * x;
    for k = 1 to 6 {{
        term = 0.0 - term * x2 / float((2 * k) * (2 * k + 1));
        s = s + term;
    }}
    return s;
}}

proc my_cos(x: float): float {{
    var term, s, x2: float;
    var k: int;
    term = 1.0;
    s = 1.0;
    x2 = x * x;
    for k = 1 to 6 {{
        term = 0.0 - term * x2 / float((2 * k - 1) * (2 * k));
        s = s + term;
    }}
    return s;
}}

# atan: Taylor series inside [-1, 1], reciprocal identity outside
proc atan_series(x: float): float {{
    var term, s, x2: float;
    var k: int;
    term = x;
    s = x;
    x2 = x * x;
    for k = 1 to 9 {{
        term = 0.0 - term * x2;
        s = s + term / float(2 * k + 1);
    }}
    return s;
}}

proc my_atan(x: float): float {{
    if (x > 1.0) {{
        return HALFPI - atan_series(1.0 / x);
    }}
    if (x < -1.0) {{
        return 0.0 - HALFPI - atan_series(1.0 / x);
    }}
    return atan_series(x);
}}

# exp by Taylor series (|x| < 2)
proc my_exp(x: float): float {{
    var term, s: float;
    var k: int;
    term = 1.0;
    s = 1.0;
    for k = 1 to 12 {{
        term = term * x / float(k);
        s = s + term;
    }}
    return s;
}}

# log via ln(1+w) series on w = x - 1 (0.4 < x < 1.8)
proc my_log(x: float): float {{
    var w, term, s: float;
    var k: int;
    w = x - 1.0;
    term = w;
    s = w;
    for k = 2 to 14 {{
        term = 0.0 - term * w;
        s = s + term / float(k);
    }}
    return s;
}}

proc my_sqrt(x: float): float {{
    var r: float;
    var k: int;
    r = 0.5 * (x + 1.0);
    for k = 1 to 4 {{
        r = 0.5 * (r + x / r);
    }}
    return r;
}}

# module 7 helper: the classic p3
proc p3(x: float, y: float): float {{
    var x1, y1: float;
    x1 = T * (x + y);
    y1 = T * (x1 + y);
    return (x1 + y1) / T2;
}}

# module 1/2: array arithmetic
proc module1(n: int): float {{
    var i: int;
    e1[0] = 1.0;
    e1[1] = -1.0;
    e1[2] = -1.0;
    e1[3] = -1.0;
    for i = 1 to n {{
        e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * T;
        e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * T;
        e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * T;
        e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * T;
    }}
    return e1[0] + e1[1] + e1[2] + e1[3];
}}

proc module3(n: int): float {{
    var x, y, z: float;
    var i: int;
    x = 0.5;
    y = 0.5;
    for i = 1 to n {{
        z = my_cos(x + y) + my_cos(x - y) - 1.0;
        x = T * my_atan(T2 * my_sin(x) * my_cos(x) / z);
        y = x;
    }}
    return x + y;
}}

proc module6(n: int): float {{
    var x, y: float;
    var i: int;
    x = 0.75;
    y = 0.75;
    for i = 1 to n {{
        x = my_sqrt(my_exp(my_log(x) / T1));
        y = my_sqrt(my_exp(my_log(y) / T1));
    }}
    return x + y;
}}

proc module7(n: int): float {{
    var x, y, s: float;
    var i: int;
    x = 0.5;
    y = 0.5;
    s = 0.0;
    for i = 1 to n {{
        x = T * p3(x, y);
        y = T * p3(y, x);
        s = s + x + y;
    }}
    return s;
}}

proc main(): int {{
    var r1, r3, r6, r7: float;
    r1 = module1(N1) + module1(N2);
    r3 = module3(N3);
    r6 = module6(N6);
    r7 = module7(N7);
    acc = r1 * 100.0 + r3 * 10.0 + r6 + r7;
    return int(acc * 1000.0 + 1000000.5);
}}
"""


def _my_sin(x: float) -> float:
    term = s = x
    x2 = x * x
    for k in range(1, 7):
        term = 0.0 - term * x2 / float((2 * k) * (2 * k + 1))
        s = s + term
    return s


def _my_cos(x: float) -> float:
    term = s = 1.0
    x2 = x * x
    for k in range(1, 7):
        term = 0.0 - term * x2 / float((2 * k - 1) * (2 * k))
        s = s + term
    return s


def _atan_series(x: float) -> float:
    term = s = x
    x2 = x * x
    for k in range(1, 10):
        term = 0.0 - term * x2
        s = s + term / float(2 * k + 1)
    return s


_HALFPI = 1.5707963267948966


def _my_atan(x: float) -> float:
    if x > 1.0:
        return _HALFPI - _atan_series(1.0 / x)
    if x < -1.0:
        return 0.0 - _HALFPI - _atan_series(1.0 / x)
    return _atan_series(x)


def _my_exp(x: float) -> float:
    term = s = 1.0
    for k in range(1, 13):
        term = term * x / float(k)
        s = s + term
    return s


def _my_log(x: float) -> float:
    w = x - 1.0
    term = s = w
    for k in range(2, 15):
        term = 0.0 - term * w
        s = s + term / float(k)
    return s


def _my_sqrt(x: float) -> float:
    r = 0.5 * (x + 1.0)
    for _ in range(4):
        r = 0.5 * (r + x / r)
    return r


_T = 0.499975
_T1 = 0.50025
_T2 = 2.0


def reference() -> int:
    """Pure-Python mirror of the Tin program."""

    def module1(n: int) -> float:
        e1 = [1.0, -1.0, -1.0, -1.0]
        for _ in range(n):
            e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * _T
            e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * _T
            e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * _T
            e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * _T
        return e1[0] + e1[1] + e1[2] + e1[3]

    def module3(n: int) -> float:
        x = y = 0.5
        for _ in range(n):
            z = _my_cos(x + y) + _my_cos(x - y) - 1.0
            x = _T * _my_atan(_T2 * _my_sin(x) * _my_cos(x) / z)
            y = x
        return x + y

    def module6(n: int) -> float:
        x = y = 0.75
        for _ in range(n):
            x = _my_sqrt(_my_exp(_my_log(x) / _T1))
            y = _my_sqrt(_my_exp(_my_log(y) / _T1))
        return x + y

    def p3(x: float, y: float) -> float:
        x1 = _T * (x + y)
        y1 = _T * (x1 + y)
        return (x1 + y1) / _T2

    def module7(n: int) -> float:
        x = y = 0.5
        s = 0.0
        for _ in range(n):
            x = _T * p3(x, y)
            y = _T * p3(y, x)
            s = s + x + y
        return s

    r1 = module1(_N1) + module1(_N2)
    r3 = module3(_N3)
    r6 = module6(_N6)
    r7 = module7(_N7)
    acc = r1 * 100.0 + r3 * 10.0 + r6 + r7
    return int(acc * 1000.0 + 1000000.5)


register(
    Benchmark(
        name="whet",
        description="Whetstone-like FP modules with in-Tin series "
        "transcendentals",
        source=lambda: SOURCE,
        reference=reference,
        fp_tolerance=1,
    )
)

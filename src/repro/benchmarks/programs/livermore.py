"""``livermore`` — the first 14 Livermore loops, double precision.

Each kernel keeps the classic loop's dependence structure (vectorizable
element-wise kernels 1/7/12, reductions 3, recurrences 5/6/11, banded and
gather/scatter patterns 2/4/10/13/14); sizes are scaled down so a full
functional simulation stays fast.  Two-dimensional arrays are flattened
with explicit index arithmetic, exactly what the paper's Modula-2/Fortran
front ends would produce.  Kernels 8/9/10/13 are structurally faithful
reductions of the originals (same array traffic shape, fewer terms);
DESIGN.md records this substitution.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N = 40          # base vector length
_MOD = 999999937

SOURCE = f"""
# livermore: the first 14 Livermore loops (reduced sizes)
const N = {_N};

var x: float[{4 * _N + 32}];
var y: float[{4 * _N + 32}];
var z: float[{4 * _N + 32}];
var u: float[{4 * _N + 32}];
var v: float[{4 * _N + 32}];
var w: float[{4 * _N + 32}];
var px: float[{4 * _N + 32}];
var ex: float[{4 * _N + 32}];
var ir: int[{4 * _N + 32}];
var seed: int;
var q, r, t: float;

proc reinit(len: int) {{
    var i, s: int;
    for i = 0 to len - 1 {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        s = seed;
        x[i] = float(s % 8191) / 8192.0;
        y[i] = float((s / 8192) % 8191) / 8192.0;
        z[i] = float((s / 1024) % 8191) / 8192.0;
        v[i] = float((s / 128) % 8191) / 16384.0;
    }}
    q = 0.25;
    r = 0.5;
    t = 0.375;
}}

proc reinit2(len: int) {{
    var i, s: int;
    for i = 0 to len - 1 {{
        seed = (seed * 1103515245 + 12345) % 2147483648;
        s = seed;
        u[i] = float(s % 8191) / 8192.0;
        w[i] = float((s / 8192) % 8191) / 8192.0;
        px[i] = float((s / 1024) % 8191) / 8192.0;
        ex[i] = float((s / 128) % 8191) / 8192.0;
        ir[i] = (s / 16) % len;
    }}
}}

proc chks(len: int): int {{
    var i: int;
    var s: float;
    s = 0.0;
    for i = 0 to len - 1 {{
        s = s + x[i];
    }}
    return int(s * 100.0 + 100000.5);
}}

proc chksw(len: int): int {{
    var i: int;
    var s: float;
    s = 0.0;
    for i = 0 to len - 1 {{
        s = s + w[i] + u[i];
    }}
    return int(s * 100.0 + 100000.5);
}}

proc chkspx(len: int): int {{
    var i: int;
    var s: float;
    s = 0.0;
    for i = 0 to len - 1 {{
        s = s + px[i] + v[i];
    }}
    return int(s * 100.0 + 100000.5);
}}

# K1: hydro fragment
proc kernel1(n: int) {{
    var k: int;
    for k = 0 to n - 1 {{
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
    }}
}}

# K2: incomplete Cholesky conjugate gradient (ICCG) sweep
proc kernel2(n: int) {{
    var ii, ipntp, ipnt, i, k: int;
    ii = n;
    ipntp = 0;
    while (ii > 1) {{
        ipnt = ipntp;
        ipntp = ipntp + ii;
        ii = ii / 2;
        i = ipntp - 1;
        for k = ipnt + 1 to ipntp - 2 by 2 {{
            i = i + 1;
            x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1];
        }}
    }}
}}

# K3: inner product
proc kernel3(n: int): float {{
    var k: int;
    var s: float;
    s = 0.0;
    for k = 0 to n - 1 {{
        s = s + z[k] * x[k];
    }}
    return s;
}}

# K4: banded linear equations
proc kernel4(n: int) {{
    var k, j, lw, m: int;
    var temp: float;
    m = (n - 7) / 2;
    k = 6;
    while (k < n) {{
        lw = k - 6;
        temp = x[k - 1];
        for j = 4 to n - 1 by 5 {{
            temp = temp - x[lw] * y[j];
            lw = lw + 1;
        }}
        x[k - 1] = y[4] * temp;
        k = k + m;
    }}
}}

# K5: tri-diagonal elimination, below diagonal (first-order recurrence)
proc kernel5(n: int) {{
    var i: int;
    for i = 1 to n - 1 {{
        x[i] = z[i] * (y[i] - x[i - 1]);
    }}
}}

# K6: general linear recurrence equations
proc kernel6(n: int) {{
    var i, k: int;
    var s: float;
    for i = 1 to n - 1 {{
        s = 0.0;
        for k = 0 to i - 1 {{
            s = s + v[(n - i) + k] * w[(i - k) - 1];
        }}
        w[i] = w[i] + s * 0.01;
    }}
}}

# K7: equation of state fragment
proc kernel7(n: int) {{
    var k: int;
    for k = 0 to n - 1 {{
        x[k] = u[k] + r * (z[k] + r * y[k])
             + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
             + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }}
}}

# K8: ADI integration (reduced: two coupled sweeps over two planes)
proc kernel8(n: int) {{
    var kx, j, j1: int;
    var a, b: float;
    a = 0.1;
    b = 0.2;
    for kx = 1 to 2 {{
        for j = 1 to n - 2 {{
            j1 = j + kx * n;
            u[j] = u[j] + a * (v[j1 - 1] + v[j1] + v[j1 + 1])
                 + b * (w[j1 - 1] + w[j1] + w[j1 + 1]);
            v[j] = v[j] + a * u[j] - b * w[j];
        }}
    }}
}}

# K9: integrate predictors (reduced term count, same slice pattern)
proc kernel9(n: int) {{
    var i: int;
    for i = 0 to n - 1 {{
        px[i] = px[i]
              + 0.25 * (px[i + n] + px[i + 2 * n])
              + 0.125 * (px[i + 3 * n] + ex[i] + ex[i + n])
              + 0.0625 * (ex[i + 2 * n] + ex[i + 3 * n]);
    }}
}}

# K10: difference predictors (cascaded differences along a slice)
proc kernel10(n: int) {{
    var i: int;
    var ar, br, cr: float;
    for i = 0 to n - 1 {{
        ar = ex[i];
        br = ar - px[i];
        px[i] = ar;
        cr = br - px[i + n];
        px[i + n] = br;
        px[i + 2 * n] = cr - px[i + 2 * n];
    }}
}}

# K11: first sum (prefix sum recurrence)
proc kernel11(n: int) {{
    var k: int;
    x[0] = y[0];
    for k = 1 to n - 1 {{
        x[k] = x[k - 1] * 0.5 + y[k];
    }}
}}

# K12: first difference
proc kernel12(n: int) {{
    var k: int;
    for k = 0 to n - 1 {{
        x[k] = y[k + 1] - y[k];
    }}
}}

# K13: 2-D particle in cell (reduced: gather, update, scatter)
proc kernel13(n: int) {{
    var ip, i1, i2: int;
    for ip = 0 to n - 1 {{
        i1 = ir[ip];
        i2 = ir[ip + n];
        x[ip] = x[ip] + y[i1] * z[i2];
        ir[ip] = (i1 + i2) % n;
    }}
}}

# K14: 1-D particle in cell (position update + charge deposition)
proc kernel14(n: int) {{
    var k, ix: int;
    for k = 0 to n - 1 {{
        v[k] = v[k] + ex[ir[k]] * 0.25;
        px[k] = px[k] + v[k];
        ix = int(px[k] * float(n)) % n;
        if (ix < 0) {{ ix = ix + n; }}
        x[ix] = x[ix] + 1.0;
        ir[k] = ix;
    }}
}}

proc main(): int {{
    var chk, pass: int;
    var s3: float;
    seed = 8191;
    chk = 0;

    reinit(4 * N);
    for pass = 1 to 6 {{ kernel1(2 * N); }}
    chk = (chk * 31 + chks(2 * N)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 3 {{ kernel2(2 * N); }}
    chk = (chk * 31 + chks(2 * N)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 3 {{ s3 = kernel3(4 * N); }}
    chk = (chk * 31 + int(s3 * 100.0 + 0.5)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 3 {{ kernel4(3 * N); }}
    chk = (chk * 31 + chks(3 * N)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 3 {{ kernel5(3 * N); }}
    chk = (chk * 31 + chks(3 * N)) % {_MOD};

    reinit(2 * N);
    reinit2(2 * N);
    kernel6(N);
    chk = (chk * 31 + chksw(N)) % {_MOD};

    reinit(4 * N);
    reinit2(4 * N);
    for pass = 1 to 6 {{ kernel7(3 * N); }}
    chk = (chk * 31 + chks(3 * N)) % {_MOD};

    reinit(3 * N);
    reinit2(3 * N);
    for pass = 1 to 3 {{ kernel8(N); }}
    chk = (chk * 31 + chksw(N)) % {_MOD};

    reinit(N);
    reinit2(4 * N);
    for pass = 1 to 6 {{ kernel9(N); }}
    chk = (chk * 31 + chkspx(N)) % {_MOD};

    reinit(N);
    reinit2(3 * N);
    for pass = 1 to 6 {{ kernel10(N); }}
    chk = (chk * 31 + chkspx(N)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 3 {{ kernel11(3 * N); }}
    chk = (chk * 31 + chks(3 * N)) % {_MOD};

    reinit(4 * N);
    for pass = 1 to 6 {{ kernel12(3 * N); }}
    chk = (chk * 31 + chks(3 * N)) % {_MOD};

    reinit(2 * N);
    reinit2(2 * N);
    for pass = 1 to 3 {{ kernel13(N); }}
    chk = (chk * 31 + chks(N)) % {_MOD};

    reinit(2 * N);
    reinit2(2 * N);
    for pass = 1 to 3 {{ kernel14(N); }}
    chk = (chk * 31 + (chks(N) + chkspx(N))) % {_MOD};

    return chk;
}}
"""


def reference() -> int:
    """Pure-Python mirror of the Tin kernels, same operation order."""
    n_base = _N
    seed = 8191
    size = 4 * n_base + 32

    x = [0.0] * size
    y = [0.0] * size
    z = [0.0] * size
    u = [0.0] * size
    v = [0.0] * size
    w = [0.0] * size
    px = [0.0] * size
    ex = [0.0] * size
    ir = [0] * size
    q = r = t = 0.0

    def reinit(length: int) -> None:
        nonlocal seed, q, r, t
        for i in range(length):
            seed = (seed * 1103515245 + 12345) % 2147483648
            s = seed
            x[i] = float(s % 8191) / 8192.0
            y[i] = float((s // 8192) % 8191) / 8192.0
            z[i] = float((s // 1024) % 8191) / 8192.0
            v[i] = float((s // 128) % 8191) / 16384.0
        q, r, t = 0.25, 0.5, 0.375

    def reinit2(length: int) -> None:
        nonlocal seed
        for i in range(length):
            seed = (seed * 1103515245 + 12345) % 2147483648
            s = seed
            u[i] = float(s % 8191) / 8192.0
            w[i] = float((s // 8192) % 8191) / 8192.0
            px[i] = float((s // 1024) % 8191) / 8192.0
            ex[i] = float((s // 128) % 8191) / 8192.0
            ir[i] = (s // 16) % length

    def chks(length: int) -> int:
        total = 0.0
        for i in range(length):
            total = total + x[i]
        return int(total * 100.0 + 100000.5)

    def chksw(length: int) -> int:
        total = 0.0
        for i in range(length):
            total = total + w[i] + u[i]
        return int(total * 100.0 + 100000.5)

    def chkspx(length: int) -> int:
        total = 0.0
        for i in range(length):
            total = total + px[i] + v[i]
        return int(total * 100.0 + 100000.5)

    def kernel1(n: int) -> None:
        for k in range(n):
            x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11])

    def kernel2(n: int) -> None:
        ii, ipntp = n, 0
        while ii > 1:
            ipnt = ipntp
            ipntp = ipntp + ii
            ii = ii // 2
            i = ipntp - 1
            for k in range(ipnt + 1, ipntp - 1, 2):
                i = i + 1
                x[i] = x[k] - v[k] * x[k - 1] - v[k + 1] * x[k + 1]

    def kernel3(n: int) -> float:
        s = 0.0
        for k in range(n):
            s = s + z[k] * x[k]
        return s

    def kernel4(n: int) -> None:
        m = (n - 7) // 2
        k = 6
        while k < n:
            lw = k - 6
            temp = x[k - 1]
            for j in range(4, n, 5):
                temp = temp - x[lw] * y[j]
                lw = lw + 1
            x[k - 1] = y[4] * temp
            k = k + m

    def kernel5(n: int) -> None:
        for i in range(1, n):
            x[i] = z[i] * (y[i] - x[i - 1])

    def kernel6(n: int) -> None:
        for i in range(1, n):
            s = 0.0
            for k in range(i):
                s = s + v[(n - i) + k] * w[(i - k) - 1]
            w[i] = w[i] + s * 0.01

    def kernel7(n: int) -> None:
        for k in range(n):
            x[k] = (
                u[k] + r * (z[k] + r * y[k])
                + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
                       + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])))
            )

    def kernel8(n: int) -> None:
        a, b = 0.1, 0.2
        for kx in range(1, 3):
            for j in range(1, n - 1):
                j1 = j + kx * n
                u[j] = (
                    u[j] + a * (v[j1 - 1] + v[j1] + v[j1 + 1])
                    + b * (w[j1 - 1] + w[j1] + w[j1 + 1])
                )
                v[j] = v[j] + a * u[j] - b * w[j]

    def kernel9(n: int) -> None:
        for i in range(n):
            px[i] = (
                px[i]
                + 0.25 * (px[i + n] + px[i + 2 * n])
                + 0.125 * (px[i + 3 * n] + ex[i] + ex[i + n])
                + 0.0625 * (ex[i + 2 * n] + ex[i + 3 * n])
            )

    def kernel10(n: int) -> None:
        for i in range(n):
            ar = ex[i]
            br = ar - px[i]
            px[i] = ar
            cr = br - px[i + n]
            px[i + n] = br
            px[i + 2 * n] = cr - px[i + 2 * n]

    def kernel11(n: int) -> None:
        x[0] = y[0]
        for k in range(1, n):
            x[k] = x[k - 1] * 0.5 + y[k]

    def kernel12(n: int) -> None:
        for k in range(n):
            x[k] = y[k + 1] - y[k]

    def kernel13(n: int) -> None:
        for ip in range(n):
            i1 = ir[ip]
            i2 = ir[ip + n]
            x[ip] = x[ip] + y[i1] * z[i2]
            ir[ip] = (i1 + i2) % n

    def kernel14(n: int) -> None:
        for k in range(n):
            v[k] = v[k] + ex[ir[k]] * 0.25
            px[k] = px[k] + v[k]
            ix = int(px[k] * float(n)) % n
            if ix < 0:
                ix = ix + n
            x[ix] = x[ix] + 1.0
            ir[k] = ix

    chk = 0

    def mix(part: int) -> None:
        nonlocal chk
        chk = (chk * 31 + part) % _MOD

    n = n_base
    reinit(4 * n)
    for _ in range(6):
        kernel1(2 * n)
    mix(chks(2 * n))

    reinit(4 * n)
    for _ in range(3):
        kernel2(2 * n)
    mix(chks(2 * n))

    reinit(4 * n)
    s3 = 0.0
    for _ in range(3):
        s3 = kernel3(4 * n)
    mix(int(s3 * 100.0 + 0.5))

    reinit(4 * n)
    for _ in range(3):
        kernel4(3 * n)
    mix(chks(3 * n))

    reinit(4 * n)
    for _ in range(3):
        kernel5(3 * n)
    mix(chks(3 * n))

    reinit(2 * n)
    reinit2(2 * n)
    kernel6(n)
    mix(chksw(n))

    reinit(4 * n)
    reinit2(4 * n)
    for _ in range(6):
        kernel7(3 * n)
    mix(chks(3 * n))

    reinit(3 * n)
    reinit2(3 * n)
    for _ in range(3):
        kernel8(n)
    mix(chksw(n))

    reinit(n)
    reinit2(4 * n)
    for _ in range(6):
        kernel9(n)
    mix(chkspx(n))

    reinit(n)
    reinit2(3 * n)
    for _ in range(6):
        kernel10(n)
    mix(chkspx(n))

    reinit(4 * n)
    for _ in range(3):
        kernel11(3 * n)
    mix(chks(3 * n))

    reinit(4 * n)
    for _ in range(6):
        kernel12(3 * n)
    mix(chks(3 * n))

    reinit(2 * n)
    reinit2(2 * n)
    for _ in range(3):
        kernel13(n)
    mix(chks(n))

    reinit(2 * n)
    reinit2(2 * n)
    for _ in range(3):
        kernel14(n)
    mix(chks(n) + chkspx(n))

    return chk


register(
    Benchmark(
        name="livermore",
        description="the first 14 Livermore loops (reduced sizes), "
        "double precision",
        source=lambda: SOURCE,
        reference=reference,
        fp_tolerance=1,
    )
)

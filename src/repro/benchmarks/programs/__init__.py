"""Benchmark program modules (each self-registers with the suite)."""

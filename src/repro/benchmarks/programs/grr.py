"""``grr`` — a PC board router.

The paper's *grr* routes printed-circuit boards.  Our equivalent is a Lee
maze router: a W x H grid seeded with obstacles, then a sequence of nets
routed by breadth-first wavefront expansion and backtracing, with routed
paths becoming obstacles for later nets.  This is the same workload
character: queue-driven integer code, bounds tests, and irregular branchy
control flow over a grid.
"""

from __future__ import annotations

from collections import deque

from ..suite import Benchmark, register

_W = 24
_H = 24
_OBSTACLES = 90
_NETS = 14
_MOD = 999999937

SOURCE = f"""
# grr: Lee maze router on a {_W}x{_H} grid
const W = {_W};
const H = {_H};
const CELLS = {_W * _H};
const NOBST = {_OBSTACLES};
const NETS = {_NETS};
const MOD = {_MOD};

var grid: int[{_W * _H}];     # 0 free, 1 blocked
var dist: int[{_W * _H}];
var queue: int[{_W * _H}];
var seed: int;

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

# BFS wavefront from src; returns 1 when dst reached
proc expand(src: int, dst: int): int {{
    var head, tail, cell, d, r, c, found: int;
    var i: int;
    for i = 0 to CELLS - 1 {{ dist[i] = -1; }}
    dist[src] = 0;
    queue[0] = src;
    head = 0;
    tail = 1;
    found = 0;
    while (head < tail && found == 0) {{
        cell = queue[head];
        head = head + 1;
        if (cell == dst) {{
            found = 1;
        }} else {{
            d = dist[cell];
            r = cell / W;
            c = cell % W;
            if (r > 0) {{
                if (grid[cell - W] == 0 && dist[cell - W] < 0) {{
                    dist[cell - W] = d + 1;
                    queue[tail] = cell - W;
                    tail = tail + 1;
                }}
            }}
            if (r < H - 1) {{
                if (grid[cell + W] == 0 && dist[cell + W] < 0) {{
                    dist[cell + W] = d + 1;
                    queue[tail] = cell + W;
                    tail = tail + 1;
                }}
            }}
            if (c > 0) {{
                if (grid[cell - 1] == 0 && dist[cell - 1] < 0) {{
                    dist[cell - 1] = d + 1;
                    queue[tail] = cell - 1;
                    tail = tail + 1;
                }}
            }}
            if (c < W - 1) {{
                if (grid[cell + 1] == 0 && dist[cell + 1] < 0) {{
                    dist[cell + 1] = d + 1;
                    queue[tail] = cell + 1;
                    tail = tail + 1;
                }}
            }}
        }}
    }}
    return found;
}}

# walk back from dst along decreasing distance, blocking the path
proc backtrace(src: int, dst: int): int {{
    var cell, d, r, c, nxt, length: int;
    cell = dst;
    length = 0;
    while (cell != src) {{
        d = dist[cell];
        r = cell / W;
        c = cell % W;
        nxt = -1;
        if (r > 0 && nxt < 0) {{
            if (dist[cell - W] == d - 1) {{ nxt = cell - W; }}
        }}
        if (r < H - 1 && nxt < 0) {{
            if (dist[cell + W] == d - 1) {{ nxt = cell + W; }}
        }}
        if (c > 0 && nxt < 0) {{
            if (dist[cell - 1] == d - 1) {{ nxt = cell - 1; }}
        }}
        if (c < W - 1 && nxt < 0) {{
            if (dist[cell + 1] == d - 1) {{ nxt = cell + 1; }}
        }}
        grid[cell] = 1;
        cell = nxt;
        length = length + 1;
    }}
    grid[src] = 1;
    return length;
}}

proc freecell(): int {{
    var cell: int;
    cell = rnd(CELLS);
    while (grid[cell] != 0) {{
        cell = rnd(CELLS);
    }}
    return cell;
}}

proc main(): int {{
    var i, src, dst, routed, total, chk: int;
    seed = 123456789;
    for i = 1 to NOBST {{
        grid[rnd(CELLS)] = 1;
    }}
    routed = 0;
    total = 0;
    for i = 1 to NETS {{
        src = freecell();
        dst = freecell();
        if (expand(src, dst) == 1) {{
            total = total + backtrace(src, dst);
            routed = routed + 1;
        }} else {{
            grid[src] = 1;
            grid[dst] = 1;
        }}
    }}
    chk = (routed * 100000 + total * 31) % MOD;
    return chk;
}}
"""


def reference() -> int:
    """Pure-Python mirror of the Tin router."""
    W, H = _W, _H
    cells = W * H
    seed = 123456789

    def rnd(m: int) -> int:
        nonlocal seed
        seed = (seed * 1103515245 + 12345) % 2147483648
        return seed % m

    grid = [0] * cells
    for _ in range(_OBSTACLES):
        grid[rnd(cells)] = 1

    def neighbors(cell: int):
        r, c = divmod(cell, W)
        if r > 0:
            yield cell - W
        if r < H - 1:
            yield cell + W
        if c > 0:
            yield cell - 1
        if c < W - 1:
            yield cell + 1

    def expand(src: int, dst: int):
        dist = [-1] * cells
        dist[src] = 0
        q = deque([src])
        while q:
            cell = q.popleft()
            if cell == dst:
                return dist
            for n in neighbors(cell):
                if grid[n] == 0 and dist[n] < 0:
                    dist[n] = dist[cell] + 1
                    q.append(n)
        return None

    def backtrace(src: int, dst: int, dist) -> int:
        cell = dst
        length = 0
        while cell != src:
            d = dist[cell]
            nxt = -1
            for n in neighbors(cell):
                if dist[n] == d - 1:
                    nxt = n
                    break
            grid[cell] = 1
            cell = nxt
            length += 1
        grid[src] = 1
        return length

    def freecell() -> int:
        cell = rnd(cells)
        while grid[cell] != 0:
            cell = rnd(cells)
        return cell

    routed = total = 0
    for _ in range(_NETS):
        src = freecell()
        dst = freecell()
        dist = expand(src, dst)
        if dist is not None:
            total += backtrace(src, dst, dist)
            routed += 1
        else:
            grid[src] = 1
            grid[dst] = 1
    return (routed * 100000 + total * 31) % _MOD


register(
    Benchmark(
        name="grr",
        description="Lee maze router: BFS wavefront expansion and "
        "backtrace over a grid with obstacles",
        source=lambda: SOURCE,
        reference=reference,
    )
)

"""``met`` — a board-level timing verifier (Metronome equivalent).

Builds a random combinational gate network (inputs always come from
earlier gates, so the array order is topological), then runs static
timing analysis: forward arrival-time propagation, backward required-time
propagation, slack computation, and a critical-gate census — repeated for
several input-arrival scenarios.  Like Metronome, this is pointer-chasing
integer code with max/min reductions and data-dependent branches.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N_GATES = 600
_N_INPUTS = 48
_ROUNDS = 3
_MOD = 999999937

SOURCE = f"""
# met: static timing verifier over a random gate DAG
const N = {_N_GATES};
const NPI = {_N_INPUTS};
const ROUNDS = {_ROUNDS};
const MOD = {_MOD};
const BIG = 1000000;

var in0: int[{_N_GATES}];
var in1: int[{_N_GATES}];
var delay: int[{_N_GATES}];
var fanout: int[{_N_GATES}];
var arrive: int[{_N_GATES}];
var required: int[{_N_GATES}];
var dtab: int[4] = {{1, 2, 3, 5}};
var seed: int;

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

proc build() {{
    var i, t: int;
    for i = 0 to NPI - 1 {{
        in0[i] = -1;
        in1[i] = -1;
        delay[i] = 0;
        fanout[i] = 0;
    }}
    for i = NPI to N - 1 {{
        t = rnd(4);
        delay[i] = dtab[t];
        in0[i] = rnd(i);
        fanout[in0[i]] = fanout[in0[i]] + 1;
        if (rnd(4) > 0) {{
            in1[i] = rnd(i);
            fanout[in1[i]] = fanout[in1[i]] + 1;
        }} else {{
            in1[i] = -1;
        }}
        fanout[i] = 0;
    }}
}}

# forward arrival-time propagation; returns the circuit delay
proc forward(): int {{
    var i, a, b, maxt: int;
    for i = NPI to N - 1 {{
        a = arrive[in0[i]];
        b = 0;
        if (in1[i] >= 0) {{
            b = arrive[in1[i]];
        }}
        if (b > a) {{
            a = b;
        }}
        arrive[i] = a + delay[i];
    }}
    maxt = 0;
    for i = 0 to N - 1 {{
        if (arrive[i] > maxt) {{
            maxt = arrive[i];
        }}
    }}
    return maxt;
}}

# backward required-time propagation; returns number of critical gates
proc backward(maxt: int): int {{
    var i, r, crit: int;
    for i = 0 to N - 1 {{
        if (fanout[i] == 0) {{
            required[i] = maxt;
        }} else {{
            required[i] = BIG;
        }}
    }}
    for i = N - 1 to NPI by -1 {{
        r = required[i] - delay[i];
        if (required[in0[i]] > r) {{
            required[in0[i]] = r;
        }}
        if (in1[i] >= 0) {{
            if (required[in1[i]] > r) {{
                required[in1[i]] = r;
            }}
        }}
    }}
    crit = 0;
    for i = 0 to N - 1 {{
        if (required[i] - arrive[i] == 0) {{
            crit = crit + 1;
        }}
    }}
    return crit;
}}

proc main(): int {{
    var round, i, maxt, crit, slacksum, chk: int;
    seed = 20081221;
    build();
    chk = 0;
    for round = 1 to ROUNDS {{
        for i = 0 to NPI - 1 {{
            arrive[i] = rnd(4 * round);
        }}
        maxt = forward();
        crit = backward(maxt);
        slacksum = 0;
        for i = 0 to N - 1 {{
            slacksum = slacksum + (required[i] - arrive[i]);
        }}
        chk = (chk * 31 + maxt * 10007 + crit * 101 + slacksum) % MOD;
    }}
    return chk;
}}
"""


def reference() -> int:
    """Pure-Python mirror of the Tin verifier."""
    n, npi = _N_GATES, _N_INPUTS
    seed = 20081221
    big = 1000000

    def rnd(m: int) -> int:
        nonlocal seed
        seed = (seed * 1103515245 + 12345) % 2147483648
        return seed % m

    dtab = [1, 2, 3, 5]
    in0 = [-1] * n
    in1 = [-1] * n
    delay = [0] * n
    fanout = [0] * n
    for i in range(npi, n):
        t = rnd(4)
        delay[i] = dtab[t]
        in0[i] = rnd(i)
        fanout[in0[i]] += 1
        if rnd(4) > 0:
            in1[i] = rnd(i)
            fanout[in1[i]] += 1

    arrive = [0] * n
    required = [0] * n
    chk = 0
    for rounds in range(1, _ROUNDS + 1):
        for i in range(npi):
            arrive[i] = rnd(4 * rounds)
        for i in range(npi, n):
            a = arrive[in0[i]]
            b = arrive[in1[i]] if in1[i] >= 0 else 0
            arrive[i] = max(a, b) + delay[i]
        maxt = max(arrive)
        for i in range(n):
            required[i] = maxt if fanout[i] == 0 else big
        for i in range(n - 1, npi - 1, -1):
            r = required[i] - delay[i]
            if required[in0[i]] > r:
                required[in0[i]] = r
            if in1[i] >= 0 and required[in1[i]] > r:
                required[in1[i]] = r
        crit = sum(
            1 for i in range(n) if required[i] - arrive[i] == 0
        )
        slacksum = sum(required[i] - arrive[i] for i in range(n))
        chk = (chk * 31 + maxt * 10007 + crit * 101 + slacksum) % _MOD
    return chk


register(
    Benchmark(
        name="met",
        description="static timing verifier: arrival/required-time "
        "propagation and slack census over a random gate DAG",
        source=lambda: SOURCE,
        reference=reference,
    )
)

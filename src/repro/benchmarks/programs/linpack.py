"""``linpack`` — LU factorization + solve, double precision.

Gaussian elimination with partial pivoting (dgefa) and the triangular
solve (dgesl), built on DAXPY exactly like the original: the matrix is
stored column-major in one flat array and DAXPY receives array + offset
pairs.  The paper uses the *official* Linpack whose inner loops are
unrolled four times; being Fortran, its DAXPY arguments may be assumed
non-aliasing.  The suite default therefore compiles this rolled source
with the compiler's 4x *careful* unrolling (which includes that argument
rule), and Figure 4-6 sweeps the unrolling factor and the careful/naive
axis explicitly.
"""

from __future__ import annotations

from ..suite import Benchmark, register

_N = 24
_MOD = 999999937

SOURCE = f"""
# linpack: dgefa/dgesl with daxpy on an {_N}x{_N} column-major matrix
const N = {_N};

var a: float[{_N * _N}];
var b: float[{_N}];
var ipvt: int[{_N}];
var seed: int;

proc rnd(m: int): int {{
    seed = (seed * 1103515245 + 12345) % 2147483648;
    return seed % m;
}}

# dst[do_ + i] += da * src[so + i] for i in [0, n)
proc daxpy(n: int, da: float, src: float[], so: int, dst: float[], do_: int) {{
    var i: int;
    if (n > 0) {{
        for i = 0 to n - 1 {{
            dst[do_ + i] = dst[do_ + i] + da * src[so + i];
        }}
    }}
}}

# index of max |a[base + i]| for i in [0, n)
proc idamax(n: int, base: int): int {{
    var i, imax: int;
    var v, vmax: float;
    imax = 0;
    vmax = a[base];
    if (vmax < 0.0) {{ vmax = -vmax; }}
    for i = 1 to n - 1 {{
        v = a[base + i];
        if (v < 0.0) {{ v = -v; }}
        if (v > vmax) {{
            vmax = v;
            imax = i;
        }}
    }}
    return imax;
}}

proc dgefa(): int {{
    var k, l, j, i, info: int;
    var t, pivot: float;
    info = 0;
    for k = 0 to N - 2 {{
        l = idamax(N - k, k * N + k) + k;
        ipvt[k] = l;
        pivot = a[k * N + l];
        if (pivot == 0.0) {{
            info = k + 1;
        }} else {{
            if (l != k) {{
                a[k * N + l] = a[k * N + k];
                a[k * N + k] = pivot;
            }}
            t = -1.0 / pivot;
            for i = k + 1 to N - 1 {{
                a[k * N + i] = a[k * N + i] * t;
            }}
            for j = k + 1 to N - 1 {{
                t = a[j * N + l];
                if (l != k) {{
                    a[j * N + l] = a[j * N + k];
                    a[j * N + k] = t;
                }}
                daxpy(N - k - 1, t, a, k * N + k + 1, a, j * N + k + 1);
            }}
        }}
    }}
    ipvt[N - 1] = N - 1;
    return info;
}}

proc dgesl() {{
    var k, kb, l: int;
    var t: float;
    for k = 0 to N - 2 {{
        l = ipvt[k];
        t = b[l];
        if (l != k) {{
            b[l] = b[k];
            b[k] = t;
        }}
        daxpy(N - k - 1, t, a, k * N + k + 1, b, k + 1);
    }}
    for kb = 0 to N - 1 {{
        k = N - 1 - kb;
        b[k] = b[k] / a[k * N + k];
        t = -b[k];
        daxpy(k, t, a, k * N, b, 0);
    }}
}}

proc main(): int {{
    var i, j, info: int;
    var s: float;
    seed = 1325;
    for i = 0 to N * N - 1 {{
        a[i] = float(rnd(1000) - 500) / 256.0;
    }}
    # b = A * ones, so the solution is all ones
    for i = 0 to N - 1 {{
        s = 0.0;
        for j = 0 to N - 1 {{
            s = s + a[j * N + i];
        }}
        b[i] = s;
    }}
    info = dgefa();
    dgesl();
    s = 0.0;
    for i = 0 to N - 1 {{
        s = s + b[i];
    }}
    return int(s * 1000.0 + 0.5) + info * 1000000;
}}
"""


def reference() -> int:
    """Pure-Python mirror (same arithmetic, same order of operations)."""
    n = _N
    seed = 1325

    def rnd(m: int) -> int:
        nonlocal seed
        seed = (seed * 1103515245 + 12345) % 2147483648
        return seed % m

    a = [0.0] * (n * n)
    for i in range(n * n):
        a[i] = float(rnd(1000) - 500) / 256.0
    b = [0.0] * n
    for i in range(n):
        s = 0.0
        for j in range(n):
            s = s + a[j * n + i]
        b[i] = s

    def daxpy(count: int, da: float, src, so: int, dst, do_: int) -> None:
        for i in range(count):
            dst[do_ + i] = dst[do_ + i] + da * src[so + i]

    ipvt = [0] * n
    info = 0
    for k in range(n - 1):
        base = k * n + k
        imax = 0
        vmax = abs(a[base])
        for i in range(1, n - k):
            v = abs(a[base + i])
            if v > vmax:
                vmax = v
                imax = i
        l = imax + k
        ipvt[k] = l
        pivot = a[k * n + l]
        if pivot == 0.0:
            info = k + 1
            continue
        if l != k:
            a[k * n + l] = a[k * n + k]
            a[k * n + k] = pivot
        t = -1.0 / pivot
        for i in range(k + 1, n):
            a[k * n + i] = a[k * n + i] * t
        for j in range(k + 1, n):
            t = a[j * n + l]
            if l != k:
                a[j * n + l] = a[j * n + k]
                a[j * n + k] = t
            daxpy(n - k - 1, t, a, k * n + k + 1, a, j * n + k + 1)
    ipvt[n - 1] = n - 1

    for k in range(n - 1):
        l = ipvt[k]
        t = b[l]
        if l != k:
            b[l] = b[k]
            b[k] = t
        daxpy(n - k - 1, t, a, k * n + k + 1, b, k + 1)
    for kb in range(n):
        k = n - 1 - kb
        b[k] = b[k] / a[k * n + k]
        t = -b[k]
        daxpy(k, t, a, k * n, b, 0)

    s = 0.0
    for i in range(n):
        s = s + b[i]
    return int(s * 1000.0 + 0.5) + info * 1000000


register(
    Benchmark(
        name="linpack",
        description="LU factorization and solve (dgefa/dgesl) on DAXPY, "
        "double precision",
        source=lambda: SOURCE,
        reference=reference,
        fp_tolerance=1,
        default_overrides={"unroll": 4, "careful": True},
    )
)

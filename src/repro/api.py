"""The stable public facade of :mod:`repro`.

One module, five entry points — everything a script needs without
importing internal packages:

* :func:`compile` — Tin source text to a scheduled
  :class:`~repro.isa.program.Program`;
* :func:`run` — functionally execute a program (or source text) and get
  its result plus dynamic trace;
* :func:`simulate` — replay a trace on a machine (preset name or
  :class:`~repro.machine.config.MachineConfig`);
* :func:`measure` — compile + run + time one suite benchmark on one
  machine;
* :func:`plan` / :func:`sweep` — build and execute a whole
  benchmark x machine grid, optionally across worker processes with a
  content-addressed trace cache;
* :func:`schedulers` — the registered scheduler backends;
  :func:`compile`, :func:`measure`, :func:`plan` and :func:`sweep` all
  take a keyword-only ``scheduler=`` naming one of them (``"list"``,
  ``"swp"``, ``"exact"``; see :mod:`repro.sched.registry`);
* :func:`ledger` / :func:`ingest` / :func:`diff` / :func:`dashboard` —
  the run-history side: store run reports in the content-addressed
  ledger, regression-diff any two runs, render the history as one
  self-contained HTML dashboard.

All parameters beyond the essential positionals are keyword-only, and
every result is a dataclass, so the surface is easy to keep stable (the
test suite snapshots these signatures).  Machines are accepted as preset
names (``"superscalar:4"``, ``"multititan"``; see
:func:`repro.machine.presets.resolve`) everywhere a configuration is
taken.

    >>> import repro.api as api
    >>> api.measure("linpack", "ideal_superscalar:4").parallelism
    2.9...
    >>> result = api.sweep(api.plan(["whet"], ["base", "superscalar:8"]),
    ...                    workers=2)
    >>> [row.parallelism for row in result.rows]
    [1.0, 2.4...]
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .analysis.sweep import SweepRow, summarize as _summarize_rows
from .benchmarks import suite as _suite
from .benchmarks.suite import Benchmark
from .engine.cache import open_cache
from .engine.executor import EngineReport, execute as _execute
from .engine.faults import FaultPlan
from .engine.plan import Plan, plan_sweep
from .engine.resilience import RetryPolicy, failure_manifest as _manifest
from .isa.program import Program
from .machine.config import MachineConfig
from .machine.presets import resolve as _resolve_machine
from .obs.metrics import MetricsRegistry
from .obs.recorder import Recorder
from .obs.trace import Tracer
from .opt.options import CompilerOptions
from .sim.interp import RunResult, run as _interp_run
from .sim.timing import TimingResult, simulate as _simulate
from .sim.trace import Trace

__all__ = [
    "FaultPlan",
    "MachineLike",
    "Plan",
    "RetryPolicy",
    "SweepResult",
    "compile",
    "dashboard",
    "diff",
    "flow_runs",
    "flow_sweep",
    "ingest",
    "ledger",
    "measure",
    "plan",
    "run",
    "schedulers",
    "simulate",
    "sweep",
]

#: Anywhere a machine is taken, a preset name works too.
MachineLike = "MachineConfig | str"


def schedulers() -> dict[str, str]:
    """The registered scheduler backends, name to one-line description.

    Any of these names is valid for the ``scheduler=`` keyword taken by
    :func:`compile`, :func:`measure`, :func:`plan` and :func:`sweep`,
    for :attr:`CompilerOptions.scheduler`, and for the CLI's
    ``--scheduler`` flag.
    """
    from .sched import registry as _registry

    return _registry.descriptions()


def _with_scheduler(options: CompilerOptions | None,
                    scheduler: str | None) -> CompilerOptions | None:
    """Apply a ``scheduler=`` keyword to (possibly default) options."""
    if scheduler is None:
        return options
    if options is None:
        return CompilerOptions(scheduler=scheduler)
    if options.scheduler == scheduler:
        return options
    return dataclasses.replace(options, scheduler=scheduler)


def compile(source: str, *, options: CompilerOptions | None = None,
            profile=None, scheduler: str | None = None) -> Program:
    """Compile Tin source text into a scheduled :class:`Program`.

    ``options`` defaults to the full optimization pipeline; ``profile``
    (a :class:`~repro.obs.profile.CompileProfile`) collects pass-level
    timing and size statistics when given.  ``scheduler`` selects the
    scheduler backend by name (see :func:`schedulers`), overriding
    ``options.scheduler`` when both are given.
    """
    from .opt.driver import compile_source

    return compile_source(source, _with_scheduler(options, scheduler),
                          profile)


def run(program: Program | str, *,
        options: CompilerOptions | None = None) -> RunResult:
    """Functionally execute a program — or compile-and-run source text.

    Returns the :class:`RunResult`: the entry function's value, the
    dynamic instruction count, and the trace :func:`simulate` replays.
    """
    if isinstance(program, str):
        program = compile(program, options=options)
    return _interp_run(program)


def simulate(trace: Trace, machine: MachineConfig | str, *,
             observe: bool = False) -> TimingResult:
    """Replay a dynamic trace on a machine and return its timing.

    ``machine`` may be a preset name; ``observe=True`` attaches exact
    per-cause stall attribution (:mod:`repro.obs.stalls`).
    """
    return _simulate(trace, _resolve_machine(machine), observe=observe)


def measure(benchmark: Benchmark | str, machine: MachineConfig | str,
            *, options: CompilerOptions | None = None,
            observe: bool = False,
            scheduler: str | None = None) -> TimingResult:
    """Compile, run, and time one suite benchmark on one machine.

    Compilation and functional execution are memoized per
    (benchmark, options), so measuring many machines is cheap.
    ``scheduler`` selects the scheduler backend by name (see
    :func:`schedulers`); with no explicit ``options`` it composes with
    the benchmark's default overrides.
    """
    if scheduler is not None and options is None:
        bench = _suite.get(benchmark) if isinstance(benchmark, str) \
            else benchmark
        options = _suite.default_options(bench, scheduler=scheduler)
    else:
        options = _with_scheduler(options, scheduler)
    return _suite.measure(
        benchmark, _resolve_machine(machine), options, observe=observe
    )


def plan(benchmarks, machines, *, options: CompilerOptions | None = None,
         options_label: str = "default", schedule_for_target: bool = False,
         observe: bool = False, scheduler: str | None = None) -> Plan:
    """Build the work plan for a benchmarks-by-machines sweep.

    Accepts benchmark names/objects and machine presets/configs; see
    :func:`repro.engine.plan.plan_sweep` for the semantics of
    ``schedule_for_target`` (the paper's per-target recompilation).
    ``scheduler`` pins every cell's scheduler backend by name (see
    :func:`schedulers`), composing with per-benchmark defaults and
    ``schedule_for_target``.
    """
    return plan_sweep(
        benchmarks, machines, options=options, options_label=options_label,
        schedule_for_target=schedule_for_target, observe=observe,
        scheduler=scheduler,
    )


@dataclass(frozen=True, slots=True)
class SweepResult:
    """Outcome of one :func:`sweep`: tidy rows plus engine statistics."""

    rows: tuple[SweepRow, ...]
    engine: EngineReport

    def summary(self) -> str:
        """Machines-by-benchmarks parallelism table with harmonic means."""
        return _summarize_rows(list(self.rows))

    def failures(self) -> tuple[SweepRow, ...]:
        """Rows whose cell exhausted the whole degradation ladder."""
        return tuple(r for r in self.rows if r.status == "failed")

    def failure_manifest(self) -> str | None:
        """One-line manifest of failed cells (``None`` when all ran)."""
        return _manifest(self.rows)

    @property
    def ok(self) -> bool:
        """True when no cell ended ``failed``."""
        return not self.failures()


def sweep(plan: Plan, *, workers: int = 1, cache_dir: str | None = None,
          no_cache: bool = False, recorder: Recorder | None = None,
          policy: RetryPolicy | None = None,
          faults: FaultPlan | None = None,
          tracer: Tracer | None = None,
          metrics: MetricsRegistry | None = None,
          progress=None, scheduler: str | None = None) -> SweepResult:
    """Execute a :class:`Plan` and return every cell's measurement.

    ``workers`` fans compile groups across a supervised process pool
    (``1`` = the bit-identical serial fallback).  ``cache_dir`` enables
    the content-addressed on-disk trace cache there (``no_cache=True``
    forces it off).  ``recorder`` receives ``cell``/``engine`` events
    plus the run's ``span`` events and ``metrics`` snapshot.

    Execution is fault tolerant: ``policy`` (a :class:`RetryPolicy`)
    bounds retries, per-group timeouts, and the serial degradation
    step; ``faults`` (a :class:`FaultPlan`; default ``$REPRO_FAULTS``)
    injects deterministic failures for testing.  A sweep always
    completes — check :meth:`SweepResult.failures` / ``.ok`` for cells
    that exhausted the ladder.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`) captures the full
    cross-process span timeline — export it with
    :func:`~repro.obs.trace.write_chrome_trace` and load the file in
    Perfetto; ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives the merged
    counters/gauges/histograms; ``progress(group_key, outcome,
    n_cells)`` is invoked as each compile group settles (live
    dashboards).

    ``scheduler`` re-pins every cell of ``plan`` to the named scheduler
    backend (see :func:`schedulers`) before executing — convenient for
    running one plan under several backends without rebuilding it.
    """
    if scheduler is not None:
        plan = dataclasses.replace(plan, cells=tuple(
            c if c.options.scheduler == scheduler
            else dataclasses.replace(
                c, options=dataclasses.replace(c.options,
                                               scheduler=scheduler))
            for c in plan.cells
        ))
    cache = open_cache(cache_dir, no_cache)
    result = _execute(plan, workers=workers, cache=cache,
                      recorder=recorder, policy=policy, faults=faults,
                      tracer=tracer, metrics=metrics, progress=progress)
    rows = tuple(
        SweepRow(
            benchmark=c.benchmark,
            options_label=c.options_label,
            machine=c.machine,
            instructions=c.instructions,
            base_cycles=c.base_cycles,
            parallelism=c.parallelism,
            stalls=c.stalls,
            status=c.status,
            error=c.error,
        )
        for c in result.cells
    )
    assert result.report is not None
    return SweepResult(rows=rows, engine=result.report)


def flow_sweep(plan: Plan, *, cache_dir: str | None = None,
               run_id: str | None = None, workers: int = 1,
               recorder: Recorder | None = None,
               policy: RetryPolicy | None = None,
               faults: FaultPlan | None = None) -> SweepResult:
    """Execute a :class:`Plan` as a checkpointed, resumable flow.

    The flow equivalent of :func:`sweep`: every compile and cell
    becomes a content-fingerprinted DAG node whose completion is
    checkpointed to the cache directory and journaled under a run id
    (``run_id``, generated when omitted — read it back from the journal
    directory via :func:`flow_runs`).  Kill the process at any node
    boundary and re-invoking with the same ``run_id`` resumes, re-runs
    only the incomplete nodes, and returns rows bit-identical to an
    uninterrupted run.  Requires a usable cache directory (the default
    is fine); see :mod:`repro.flow`.
    """
    from .flow.flows import FlowContext, run_sweep_flow

    cache = open_cache(cache_dir, False)
    ctx = FlowContext(cache=cache, run_id=run_id, policy=policy,
                      faults=faults)
    result = run_sweep_flow(plan, flow=ctx, workers=workers,
                            recorder=recorder)
    rows = tuple(
        SweepRow(
            benchmark=c.benchmark,
            options_label=c.options_label,
            machine=c.machine,
            instructions=c.instructions,
            base_cycles=c.base_cycles,
            parallelism=c.parallelism,
            stalls=c.stalls,
            status=c.status,
            error=c.error,
        )
        for c in result.cells
    )
    assert result.report is not None
    return SweepResult(rows=rows, engine=result.report)


def flow_runs(cache_dir: str | None = None) -> list[str]:
    """Known flow run ids under a cache directory, oldest first."""
    from .engine.cache import DEFAULT_CACHE_DIR
    from .flow.state import list_runs

    return list_runs(cache_dir or DEFAULT_CACHE_DIR)


def ledger(path: str | None = None):
    """Open (creating if needed) the run-history ledger.

    ``path`` defaults to ``$REPRO_LEDGER`` or
    ``results/history.sqlite``.  Returns a
    :class:`~repro.obs.history.HistoryLedger`; use it as a context
    manager to release the database handle.
    """
    from .obs.history import HistoryLedger

    return HistoryLedger(path)


def ingest(source: str, *, ledger_path: str | None = None):
    """Ingest one run report (``.jsonl``) or bench document (``.json``)
    into the ledger; returns the
    :class:`~repro.obs.history.IngestResult`.

    Ingestion is content-addressed: re-ingesting the same run (or an
    identical rerun of the same configuration) is a no-op.
    """
    with ledger(ledger_path) as db:
        if source.endswith(".json"):
            return db.ingest_bench(source)
        return db.ingest_report(source)


def diff(a: str, b: str, *, ledger_path: str | None = None,
         policy=None):
    """Regression-diff two runs; returns a
    :class:`~repro.obs.diff.DiffResult` (check ``.ok`` / ``.render()``).

    ``a`` (baseline) and ``b`` (candidate) are report/bench file paths
    or ledger references (``latest``, ``latest~N``, a numeric id, or a
    fingerprint prefix); ``policy`` is an optional
    :class:`~repro.obs.diff.DiffPolicy`.
    """
    import os as _os

    from .obs.diff import diff_payloads, load_diff_side

    if _os.path.exists(a) and _os.path.exists(b):
        return diff_payloads(load_diff_side(a), load_diff_side(b),
                             policy)
    with ledger(ledger_path) as db:
        return diff_payloads(load_diff_side(a, db),
                             load_diff_side(b, db), policy)


def dashboard(out: str, *, ledger_path: str | None = None,
              title: str = "repro run history") -> str:
    """Render the ledger as one self-contained HTML file at ``out``.

    No network, no external assets: the page embeds the full ledger
    export as JSON plus inline CSS/JS.  Returns ``out``.
    """
    from .obs.dash import write_dashboard

    with ledger(ledger_path) as db:
        data = db.export()
    write_dashboard(out, data, title=title)
    return out

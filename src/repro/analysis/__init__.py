"""Experiment drivers, statistics, and rendering for the paper's exhibits."""

from . import experiments, pipeviz
from .blockstats import BlockStats, block_stats
from .experiments import ALL_EXHIBITS, Exhibit, run_all
from .stats import geometric_mean, harmonic_mean, percent_change
from .sweep import SweepRow, summarize, sweep
from .tables import format_table, line_chart

__all__ = [
    "ALL_EXHIBITS",
    "BlockStats",
    "Exhibit",
    "SweepRow",
    "block_stats",
    "summarize",
    "sweep",
    "experiments",
    "format_table",
    "geometric_mean",
    "harmonic_mean",
    "line_chart",
    "percent_change",
    "pipeviz",
    "run_all",
]

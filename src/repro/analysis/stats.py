"""Small statistics helpers used by the experiment drivers."""

from __future__ import annotations

from typing import Iterable


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean (the paper's aggregate across benchmarks, Fig 4-1)."""
    vals = list(values)
    if not vals:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in vals):
        raise ValueError("harmonic mean needs positive values")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean."""
    vals = list(values)
    if not vals:
        raise ValueError("geometric mean of empty sequence")
    prod = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        prod *= v
    return prod ** (1.0 / len(vals))


def percent_change(new: float, old: float) -> float:
    """Relative change in percent."""
    if old == 0:
        raise ValueError("undefined percent change from zero")
    return (new - old) / old * 100.0

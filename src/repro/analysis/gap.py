"""The scheduling gap study: how far is the heuristic from optimal?

Runs the benchmark x machine grid once per scheduler backend (each cell
recompiled and scheduled for the machine it is measured on, the paper's
methodology) and reports, per cell, the cycle gap between the ``"list"``
heuristic and the ``"exact"`` branch-and-bound backend —
``cycles(list) - cycles(exact)`` — plus the fraction of cells where the
heuristic already achieves the optimum.  Because ``"exact"`` seeds its
search with the list order and only ever improves on it, a negative gap
is impossible by construction wherever the search completes; the
:attr:`GapReport.ok` flag checks exactly that invariant and gates the CI
comparison (see ``scripts/bench_gap.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..engine.executor import execute
from ..engine.plan import plan_sweep
from ..machine.config import MachineConfig
from ..machine.presets import paper_machines
from .tables import format_table

#: Backends the gap study compares by default (baseline first).
DEFAULT_SCHEDULERS = ("list", "swp", "exact")


@dataclass(frozen=True, slots=True)
class GapCell:
    """One grid cell's minor-cycle counts under every backend measured."""

    benchmark: str
    machine: str
    #: scheduler backend name -> minor cycles; a backend is absent when
    #: its cell failed (exhausted the engine's degradation ladder)
    cycles: dict

    def gap(self, baseline: str = "list",
            candidate: str = "exact") -> int | None:
        """``cycles(baseline) - cycles(candidate)``; ``None`` when
        either side failed to measure."""
        a = self.cycles.get(baseline)
        b = self.cycles.get(candidate)
        if a is None or b is None:
            return None
        return a - b


@dataclass(frozen=True, slots=True)
class GapReport:
    """Outcome of :func:`compute_gap` over one grid."""

    baseline: str
    schedulers: tuple
    cells: tuple

    @property
    def ok(self) -> bool:
        """True when no measured cell has ``exact`` above the baseline
        (the seeded search can only improve; > 0 means a model bug)."""
        if "exact" not in self.schedulers:
            return True
        return all(
            g is None or g >= 0
            for g in (c.gap(self.baseline, "exact") for c in self.cells)
        )

    def optimal_fraction(self, candidate: str = "exact") -> float:
        """Fraction of measured cells where the baseline heuristic
        already matches ``candidate`` (gap == 0)."""
        gaps = [c.gap(self.baseline, candidate) for c in self.cells]
        gaps = [g for g in gaps if g is not None]
        if not gaps:
            return float("nan")
        return sum(1 for g in gaps if g == 0) / len(gaps)

    def render(self) -> str:
        """Cells-by-backends cycle table with a trailing gap column."""
        candidate = ("exact" if "exact" in self.schedulers
                     else self.schedulers[-1])
        headers = (["benchmark", "machine"]
                   + [f"{s} cycles" for s in self.schedulers]
                   + [f"gap ({self.baseline}-{candidate})"])
        rows = []
        for cell in self.cells:
            row = [cell.benchmark, cell.machine]
            for s in self.schedulers:
                row.append(cell.cycles.get(s, "FAILED"))
            g = cell.gap(self.baseline, candidate)
            row.append("-" if g is None else g)
            rows.append(row)
        lines = [format_table(headers, rows)]
        frac = self.optimal_fraction(candidate)
        if frac == frac:  # not NaN
            lines.append(
                f"heuristic optimal in {frac:.1%} of cells "
                f"({self.baseline} == {candidate})"
            )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready form (the payload of ``BENCH_gap.json``)."""
        candidate = ("exact" if "exact" in self.schedulers
                     else self.schedulers[-1])
        frac = self.optimal_fraction(candidate)
        return {
            "baseline": self.baseline,
            "schedulers": list(self.schedulers),
            "cells": [
                {
                    "benchmark": c.benchmark,
                    "machine": c.machine,
                    "cycles": dict(c.cycles),
                    "gap": c.gap(self.baseline, candidate),
                }
                for c in self.cells
            ],
            "optimal_fraction": None if frac != frac else frac,
            "ok": self.ok,
        }


def compute_gap(
    benchmarks: Iterable | None = None,
    machines: Sequence[MachineConfig | str] | None = None,
    *,
    schedulers: Sequence[str] = DEFAULT_SCHEDULERS,
    baseline: str = "list",
    workers: int = 1,
    cache=None,
    recorder=None,
    policy=None,
    tracer=None,
    progress=None,
) -> GapReport:
    """Measure the grid once per scheduler backend and collect gaps.

    ``benchmarks`` defaults to the whole suite and ``machines`` to the
    paper's seven; every cell is recompiled scheduled for its target
    machine (``schedule_for_target``).  ``workers``/``cache``/
    ``policy``/``recorder``/``tracer``/``progress`` thread through to
    the engine per backend run; the trace cache keys on the options
    fingerprint, so per-backend results never collide in it.
    """
    if benchmarks is None:
        from ..benchmarks import suite

        benchmarks = [b.name for b in suite.all_benchmarks()]
    else:
        benchmarks = list(benchmarks)
    if machines is None:
        machines = paper_machines()
    if baseline not in schedulers:
        raise ValueError(
            f"baseline {baseline!r} not among schedulers {schedulers}"
        )

    cycles: dict[tuple, dict] = {}
    order: list[tuple] = []
    for sched in schedulers:
        plan = plan_sweep(benchmarks, machines,
                          schedule_for_target=True, scheduler=sched)
        result = execute(plan, workers=workers, cache=cache,
                         recorder=recorder, policy=policy, tracer=tracer,
                         progress=progress)
        for cell in result.cells:
            key = (cell.benchmark, cell.machine)
            if key not in cycles:
                cycles[key] = {}
                order.append(key)
            if cell.status != "failed":
                cycles[key][sched] = cell.minor_cycles

    return GapReport(
        baseline=baseline,
        schedulers=tuple(schedulers),
        cells=tuple(
            GapCell(benchmark=b, machine=m, cycles=cycles[(b, m)])
            for b, m in order
        ),
    )

"""ASCII pipeline diagrams (the paper's Figures 2-1 .. 2-7 and 4-2).

Each instruction is drawn on its own row against a time axis in *minor*
cycles: fetch/decode stages as ``F``/``D``, the execution interval as
``#`` (the paper's crosshatched pipestage), and write-back as ``W``.
Issue times come from the real timing model
(:func:`repro.sim.timing.issue_schedule`), so the diagrams are generated,
not drawn by hand.
"""

from __future__ import annotations

from ..isa import build
from ..isa.instruction import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Reg, virtual
from ..machine.config import MachineConfig
from ..sim.timing import issue_schedule
from ..sim.trace import Trace


def render_pipeline(
    trace: Trace,
    config: MachineConfig,
    front_stages: int = 2,
    max_instructions: int = 16,
) -> str:
    """Render the execution of ``trace`` on ``config`` as a diagram."""
    times = issue_schedule(trace, config)
    n = min(len(times), max_instructions)
    lats = [
        config.latencies[ins.op.klass] for ins in trace.instructions()
    ]
    end = max(times[i] + lats[i] for i in range(n)) + 2

    lines = [
        f"{config.name}: issue width {config.issue_width}, "
        f"degree {config.superpipeline_degree} "
        f"(1 column = 1/{config.superpipeline_degree} base cycle)"
    ]
    for i in range(n):
        row = [" "] * (end + front_stages)
        t = times[i] + front_stages
        for s in range(front_stages):
            row[t - front_stages + s] = "FD"[s % 2]
        for c in range(lats[i]):
            row[t + c] = "#"
        if t + lats[i] < len(row):
            row[t + lats[i]] = "W"
        lines.append(f"i{i:<2d} |" + "".join(row))
    axis = []
    for c in range(end + front_stages):
        minor = c - front_stages
        axis.append(
            "^" if minor >= 0 and minor % config.superpipeline_degree == 0
            else " "
        )
    lines.append("    |" + "".join(axis) + "  (^ = base cycle boundary)")
    return "\n".join(lines)


def independent_instructions(count: int) -> list[Instruction]:
    """``count`` mutually independent ALU instructions (demo workload)."""
    out = []
    for i in range(count):
        out.append(build.alui(Opcode.ADDI, virtual(i), virtual(100 + i), 1))
    return out


def dependent_chain(count: int) -> list[Instruction]:
    """``count`` instructions forming one serial dependence chain."""
    out = []
    for i in range(count):
        src: Reg = virtual(i)
        out.append(build.alui(Opcode.ADDI, virtual(i + 1), src, 1))
    return out


def demo_trace(kind: str = "independent", count: int = 8) -> Trace:
    """Build the canonical demo trace used by the Figure 2-x diagrams."""
    if kind == "independent":
        instrs = independent_instructions(count)
    elif kind == "chain":
        instrs = dependent_chain(count)
    else:
        raise ValueError(f"unknown demo kind {kind!r}")
    return Trace.from_instructions(instrs)


def render_vector_diagram(
    n_elements: int = 6,
    names: tuple[str, ...] = ("vload", "vfadd", "vstore"),
    front_stages: int = 2,
) -> str:
    """Figure 2-8: execution in a vector machine.

    "Each vector instruction results in a string of operations, one for
    each element in the vector."  Chained vector instructions issue on
    successive cycles (the paper draws serial issue "for diagram
    readability only") and then stream one element operation per cycle,
    so the strings overlap — the machine sustains several operations per
    cycle without issuing several instructions per cycle.
    """
    width = front_stages + len(names) + n_elements + 2
    lines = [
        f"vector machine: {n_elements}-element vectors, chained"
    ]
    for k, name in enumerate(names):
        row = [" "] * width
        for s in range(front_stages):
            row[k + s] = "FD"[s % 2]
        for e in range(n_elements):
            row[k + front_stages + e] = "#"
        lines.append(f"{name:6s} |" + "".join(row))
    total = len(names) + front_stages + n_elements
    ops = len(names) * n_elements
    lines.append(
        f"        {ops} element operations complete by cycle "
        f"{total - 1}: ~{ops / (total - 1):.1f} ops/cycle without "
        f"multi-issue"
    )
    return "\n".join(lines)

"""ASCII rendering of tables and simple line charts.

The experiment drivers return raw numbers; these helpers turn them into
the tables and figure-shaped charts printed by the benchmark harness (no
plotting library is needed or available offline).
"""

from __future__ import annotations

from typing import Mapping, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    title: str | None = None,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Plot named (x, y) series on a character grid.

    Each series is drawn with its own marker (first letter of its name,
    then digits on collision).  Good enough to eyeball the paper's figure
    shapes in a terminal.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ValueError("no data to plot")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers: dict[str, str] = {}
    used: set[str] = set()
    for name in series:
        mark = name[0].upper()
        if mark in used:
            for digit in "123456789":
                if digit not in used:
                    mark = digit
                    break
        used.add(mark)
        markers[name] = mark

    for name, pts in series.items():
        mark = markers[name]
        for x, y in pts:
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"{y_label} (y: {y_min:.2f} .. {y_max:.2f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" x: {x_min:g} .. {x_max:g} {x_label}")
    legend = ", ".join(f"{markers[name]}={name}" for name in series)
    lines.append(f" legend: {legend}")
    return "\n".join(lines)

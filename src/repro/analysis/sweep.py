"""Structured parameter sweeps over benchmarks x machines x options.

A thin public API over what the experiment drivers do by hand: run a set
of benchmarks under a set of compile options, replay each trace on a set
of machine configurations, and return tidy rows.  Useful for building
custom studies without touching the drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..benchmarks import suite
from ..benchmarks.suite import Benchmark
from ..machine.config import MachineConfig
from ..obs.recorder import Recorder, active_recorder
from ..obs.stalls import StallBreakdown
from ..opt.options import CompilerOptions
from ..sim.timing import simulate
from .stats import harmonic_mean
from .tables import format_table


@dataclass(frozen=True, slots=True)
class SweepRow:
    """One (benchmark, options, machine) measurement."""

    benchmark: str
    options_label: str
    machine: str
    instructions: int
    base_cycles: float
    parallelism: float
    #: stall attribution; populated only when sweeping with observe=True
    stalls: StallBreakdown | None = None


def sweep(
    benchmarks: Iterable[Benchmark | str],
    machines: Sequence[MachineConfig],
    options: CompilerOptions | None = None,
    options_label: str = "default",
    schedule_for_target: bool = False,
    observe: bool = False,
    recorder: Recorder | None = None,
) -> list[SweepRow]:
    """Measure every benchmark on every machine.

    With ``schedule_for_target`` the code is recompiled, scheduled for
    each machine being measured (the paper's methodology); otherwise one
    trace per benchmark is reused across machines (much faster).

    ``observe=True`` attaches a stall breakdown to every row;
    ``recorder`` (optional) receives one ``sweep_row`` event per
    measurement, so a :class:`~repro.obs.recorder.JsonlRecorder` turns a
    sweep into a machine-readable run report.
    """
    rec = active_recorder(recorder)
    rows: list[SweepRow] = []
    for bench in benchmarks:
        if isinstance(bench, str):
            bench = suite.get(bench)
        for config in machines:
            if schedule_for_target:
                opts = suite.default_options(bench, schedule_for=config)
                if options is not None:
                    raise ValueError(
                        "options and schedule_for_target are exclusive"
                    )
            else:
                opts = options or suite.default_options(bench)
            result = suite.run_benchmark(bench, opts)
            timing = simulate(result.trace, config, observe=observe)
            rows.append(
                SweepRow(
                    benchmark=bench.name,
                    options_label=options_label,
                    machine=config.name,
                    instructions=result.instructions,
                    base_cycles=timing.base_cycles,
                    parallelism=timing.parallelism,
                    stalls=timing.stalls,
                )
            )
            if rec.enabled:
                event = {
                    "benchmark": bench.name,
                    "machine": config.name,
                    "options": options_label,
                    "instructions": result.instructions,
                    "base_cycles": timing.base_cycles,
                    "parallelism": timing.parallelism,
                }
                if timing.stalls is not None:
                    event["stalls"] = timing.stalls.as_dict()
                rec.emit("sweep_row", **event)
    return rows


def summarize(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as a machines-by-benchmarks parallelism table,
    with a harmonic-mean column."""
    machines: list[str] = []
    benches: list[str] = []
    values: dict[tuple[str, str], float] = {}
    for row in rows:
        if row.machine not in machines:
            machines.append(row.machine)
        if row.benchmark not in benches:
            benches.append(row.benchmark)
        values[(row.machine, row.benchmark)] = row.parallelism
    table_rows = []
    for machine in machines:
        cells = [values[(machine, b)] for b in benches
                 if (machine, b) in values]
        table_rows.append(
            [machine]
            + [values.get((machine, b), float("nan")) for b in benches]
            + [harmonic_mean(cells)]
        )
    return format_table(
        ["machine"] + benches + ["harmonic mean"], table_rows
    )

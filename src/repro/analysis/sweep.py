"""Structured parameter sweeps over benchmarks x machines x options.

A thin public API over what the experiment drivers do by hand: run a set
of benchmarks under a set of compile options, replay each trace on a set
of machine configurations, and return tidy rows.  Useful for building
custom studies without touching the drivers.

Execution is delegated to :mod:`repro.engine`: ``workers>1`` fans the
grid across a process pool and ``cache`` (a
:class:`~repro.engine.cache.TraceCache`) skips recompilation across runs
and processes.  The default ``workers=1`` without a cache is
bit-identical to the historical inline loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..benchmarks.suite import Benchmark
from ..engine.cache import TraceCache
from ..engine.executor import execute
from ..engine.plan import plan_sweep
from ..machine.config import MachineConfig
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import Recorder, active_recorder
from ..obs.stalls import StallBreakdown
from ..obs.trace import Tracer, active_tracer
from ..opt.options import CompilerOptions
from .stats import harmonic_mean
from .tables import format_table


@dataclass(frozen=True, slots=True)
class SweepRow:
    """One (benchmark, options, machine) measurement."""

    benchmark: str
    options_label: str
    machine: str
    instructions: int
    base_cycles: float
    parallelism: float
    #: stall attribution; populated only when sweeping with observe=True
    stalls: StallBreakdown | None = None
    #: supervision outcome: ok | retried | degraded | failed
    status: str = "ok"
    #: final typed error payload for failed cells
    error: dict | None = None


def sweep(
    benchmarks: Iterable[Benchmark | str],
    machines: Sequence[MachineConfig | str],
    options: CompilerOptions | None = None,
    options_label: str = "default",
    schedule_for_target: bool = False,
    observe: bool = False,
    recorder: Recorder | None = None,
    workers: int = 1,
    cache: TraceCache | None = None,
    policy=None,
    faults=None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress=None,
    sample_resources: bool = False,
    scheduler: str | None = None,
    flow=None,
) -> list[SweepRow]:
    """Measure every benchmark on every machine.

    With ``schedule_for_target`` the code is recompiled, scheduled for
    each machine being measured (the paper's methodology); otherwise one
    trace per benchmark is reused across machines (much faster).
    Machines may be preset names (``"superscalar:4"``) or
    :class:`MachineConfig` objects.

    ``observe=True`` attaches a stall breakdown to every row;
    ``recorder`` (optional) receives one ``sweep_row`` event per
    measurement plus the engine's ``cell``/``engine`` events, so a
    :class:`~repro.obs.recorder.JsonlRecorder` turns a sweep into a
    machine-readable run report.  ``workers`` and ``cache`` select
    parallel execution and the on-disk trace cache; results are
    identical regardless.  ``policy`` (a
    :class:`~repro.engine.resilience.RetryPolicy`) and ``faults`` (a
    :class:`~repro.engine.faults.FaultPlan`) configure supervision;
    cells that exhaust the retry ladder come back with
    ``status="failed"`` instead of aborting the sweep.

    ``tracer``/``metrics``/``progress`` thread straight through to
    :func:`~repro.engine.executor.execute` — pass a
    :class:`~repro.obs.trace.Tracer` to capture the full span timeline
    (plan build included) for Perfetto export, a
    :class:`~repro.obs.metrics.MetricsRegistry` for the merged
    counters/histograms, and a ``progress(group_key, outcome,
    n_cells)`` callback for live display.  ``sample_resources=True``
    additionally records per-process RSS/CPU telemetry (see
    :func:`~repro.engine.executor.execute`).

    ``scheduler`` pins every cell's scheduler backend by registry name
    (``"list"``, ``"swp"``, ``"exact"``, ...); see
    :func:`repro.api.schedulers`.  The choice participates in each
    cell's option fingerprint, so per-backend results never share cache
    entries.

    ``flow`` (a :class:`~repro.flow.flows.FlowContext`) routes the
    sweep through the checkpointed workflow DAG instead of the classic
    executor: every compile and cell becomes a journaled, resumable
    node (see :mod:`repro.flow`), and the returned rows are
    bit-identical to the classic path.  Requires an enabled cache.
    """
    rec = active_recorder(recorder)
    tr = active_tracer(tracer)
    with tr.span("plan.build", cat="engine"):
        plan = plan_sweep(
            benchmarks,
            machines,
            options=options,
            options_label=options_label,
            schedule_for_target=schedule_for_target,
            observe=observe,
            scheduler=scheduler,
        )
    if flow is not None:
        from ..flow.flows import run_sweep_flow

        result = run_sweep_flow(plan, flow=flow, workers=workers,
                                recorder=rec, tracer=tracer)
    else:
        result = execute(plan, workers=workers, cache=cache, recorder=rec,
                         policy=policy, faults=faults, tracer=tracer,
                         metrics=metrics, progress=progress,
                         sample_resources=sample_resources)
    rows: list[SweepRow] = []
    for cell in result.cells:
        rows.append(SweepRow(
            benchmark=cell.benchmark,
            options_label=cell.options_label,
            machine=cell.machine,
            instructions=cell.instructions,
            base_cycles=cell.base_cycles,
            parallelism=cell.parallelism,
            stalls=cell.stalls,
            status=cell.status,
            error=cell.error,
        ))
        if rec.enabled:
            event = {
                "benchmark": cell.benchmark,
                "machine": cell.machine,
                "options": cell.options_label,
                "instructions": cell.instructions,
                "base_cycles": cell.base_cycles,
                "parallelism": cell.parallelism,
                "status": cell.status,
            }
            if cell.stalls is not None:
                event["stalls"] = cell.stalls.as_dict()
            rec.emit("sweep_row", **event)
    return rows


def summarize(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as a machines-by-benchmarks parallelism table,
    with a harmonic-mean column.

    Failed cells render as NaN and are excluded from the mean, so a
    partially failed sweep still summarizes cleanly.
    """
    machines: list[str] = []
    benches: list[str] = []
    values: dict[tuple[str, str], float] = {}
    for row in rows:
        if row.machine not in machines:
            machines.append(row.machine)
        if row.benchmark not in benches:
            benches.append(row.benchmark)
        if row.status != "failed":
            values[(row.machine, row.benchmark)] = row.parallelism
    table_rows = []
    for machine in machines:
        cells = [values[(machine, b)] for b in benches
                 if (machine, b) in values]
        table_rows.append(
            [machine]
            + [values.get((machine, b), float("nan")) for b in benches]
            + [harmonic_mean(cells) if cells else float("nan")]
        )
    return format_table(
        ["machine"] + benches + ["harmonic mean"], table_rows
    )

"""Experiment drivers: one function per table / figure of the paper.

Every driver returns an :class:`Exhibit` holding the raw numbers plus a
rendered ASCII table (and chart, where the original is a figure).  The
benchmark harness under ``benchmarks/`` calls these and prints them; the
EXPERIMENTS.md comparison against the paper is generated from the same
data.

The drivers compile benchmarks *scheduled for the machine being
simulated*, like the paper's system ("the language system then optimizes
the code ... and schedules the instructions for the pipeline, all
according to this specification").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..benchmarks import suite
from ..obs.recorder import Recorder, active_recorder
from ..isa import build
from ..isa.opcodes import Opcode
from ..isa.registers import RegisterFileSpec, virtual
from ..machine.config import MachineConfig
from ..machine.metrics import (
    PAPER_FREQUENCIES,
    average_degree_of_superpipelining,
    dynamic_frequencies,
    machine_degree,
    required_parallelism,
)
from ..machine.presets import (
    CRAY1_LATENCIES,
    MULTITITAN_LATENCIES,
    base_machine,
    ideal_superscalar,
    multititan,
    superpipelined,
    superpipelined_superscalar,
    underpipelined_half_issue,
    underpipelined_slow_cycle,
)
from ..opt.options import CompilerOptions
from ..sim.cache import (
    TABLE_5_1,
    CacheConfig,
    parallel_issue_speedup_with_misses,
    simulate_with_cache,
)
from ..sim.timing import simulate
from ..sim.trace import Trace
from . import pipeviz
from .stats import harmonic_mean
from .tables import format_table, line_chart


@dataclass(slots=True)
class Exhibit:
    """One reproduced table or figure."""

    ident: str
    title: str
    text: str                      # rendered table/diagram/chart
    data: dict = field(default_factory=dict)
    notes: str = ""

    def __str__(self) -> str:
        header = f"== {self.ident}: {self.title} =="
        parts = [header, self.text]
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


_DEGREES = tuple(range(1, 9))


def _suite_runs(options: CompilerOptions | None = None):
    return {
        b.name: suite.run_benchmark(b, options or suite.default_options(b))
        for b in suite.all_benchmarks()
    }


# --------------------------------------------------------------------- fig 1-1
def fig1_1() -> Exhibit:
    """Figure 1-1: instruction-level parallelism of two code fragments."""
    a = [
        build.lw(virtual(1), virtual(10), 23),
        build.alui(Opcode.ADDI, virtual(2), virtual(11), 1),
        build.alu(Opcode.FADD, virtual(3), virtual(12), virtual(13)),
    ]
    b = [
        build.alui(Opcode.ADDI, virtual(1), virtual(1), 1),
        build.alu(Opcode.ADD, virtual(2), virtual(1), virtual(10)),
        build.sw(virtual(11), virtual(2), 0),
    ]
    rows = []
    values = {}
    for name, frag in (("(a) independent", a), ("(b) dependent", b)):
        trace = Trace.from_instructions(frag)
        result = simulate(trace, ideal_superscalar(8))
        values[name] = result.parallelism
        rows.append([name, len(frag), result.base_cycles, result.parallelism])
    text = format_table(
        ["fragment", "instructions", "cycles", "parallelism"], rows
    )
    return Exhibit(
        ident="fig1-1",
        title="instruction-level parallelism of two fragments",
        text=text,
        data=values,
        notes="paper: (a) parallelism=3, (b) parallelism=1",
    )


# ------------------------------------------------------------- figures 2-1..2-7
def fig2_diagrams() -> Exhibit:
    """Figures 2-1..2-7: execution diagrams of the machine taxonomy."""
    demo = pipeviz.demo_trace("independent", 8)
    sections = []
    configs = [
        ("Figure 2-1 base machine", base_machine()),
        ("Figure 2-2 underpipelined: cycle > operation", underpipelined_slow_cycle()),
        ("Figure 2-3 underpipelined: issues < 1 instr/cycle", underpipelined_half_issue()),
        ("Figure 2-4 superscalar (n=3)", ideal_superscalar(3)),
        ("Figure 2-5 VLIW (modelled as wide issue, n=3)", ideal_superscalar(3)),
        ("Figure 2-6 superpipelined (m=3)", superpipelined(3)),
        ("Figure 2-7 superpipelined superscalar (n=3, m=3)",
         superpipelined_superscalar(3, 3)),
    ]
    data = {}
    for title, config in configs:
        result = simulate(demo, config)
        data[title] = result.base_cycles
        sections.append(
            f"{title} — 8 independent instructions in "
            f"{result.base_cycles:.2f} base cycles\n"
            + pipeviz.render_pipeline(demo, config)
        )
    sections.append(
        "Figure 2-8 vector machine — chained vector execution\n"
        + pipeviz.render_vector_diagram()
    )
    return Exhibit(
        ident="fig2-1..8",
        title="machine taxonomy execution diagrams",
        text="\n\n".join(sections),
        data=data,
    )


# ------------------------------------------------------------------- table 2-1
def table2_1() -> Exhibit:
    """Table 2-1: average degree of superpipelining."""
    rows = []
    for name, lats in (
        ("MultiTitan", MULTITITAN_LATENCIES),
        ("CRAY-1", CRAY1_LATENCIES),
    ):
        rows.append(
            [name, "paper static mix",
             average_degree_of_superpipelining(lats, PAPER_FREQUENCIES)]
        )
    # the same metric under our measured dynamic instruction mix
    runs = _suite_runs()
    counts: dict = {}
    for run in runs.values():
        for klass, count in run.trace.class_counts().items():
            counts[klass] = counts.get(klass, 0) + count
    measured = dynamic_frequencies(counts)
    for name, lats in (
        ("MultiTitan", MULTITITAN_LATENCIES),
        ("CRAY-1", CRAY1_LATENCIES),
    ):
        rows.append(
            [name, "measured dynamic mix",
             average_degree_of_superpipelining(lats, measured)]
        )
    text = format_table(
        ["machine", "frequency source", "avg degree of superpipelining"],
        rows,
    )
    # companion table: the paper's static mix next to our measured mix
    freq_rows = []
    for klass in sorted(measured, key=lambda k: -measured[k]):
        freq_rows.append([
            klass.value,
            PAPER_FREQUENCIES.get(klass, 0.0) * 100.0,
            measured[klass] * 100.0,
        ])
    freq_text = format_table(
        ["instruction class", "paper static %", "measured dynamic %"],
        freq_rows,
        title="instruction-class mix",
    )
    data = {(r[0], r[1]): r[2] for r in rows}
    data["measured_frequencies"] = measured
    return Exhibit(
        ident="table2-1",
        title="average degree of superpipelining",
        text=text + "\n\n" + freq_text,
        data=data,
        notes="paper: MultiTitan 1.7, CRAY-1 4.4 (static mix)",
    )


# --------------------------------------------------------------------- fig 4-1
def fig4_1(degrees: tuple[int, ...] = _DEGREES) -> Exhibit:
    """Figure 4-1: supersymmetry — superscalar vs superpipelined."""
    ss_points = []
    sp_points = []
    rows = []
    for degree in degrees:
        ss_cfg = ideal_superscalar(degree)
        sp_cfg = superpipelined(degree)
        ss_vals = []
        sp_vals = []
        for bench in suite.all_benchmarks():
            run_ss = suite.run_benchmark(
                bench, suite.default_options(bench, schedule_for=ss_cfg)
            )
            ss_vals.append(simulate(run_ss.trace, ss_cfg).parallelism)
            run_sp = suite.run_benchmark(
                bench, suite.default_options(bench, schedule_for=sp_cfg)
            )
            sp_vals.append(simulate(run_sp.trace, sp_cfg).parallelism)
        ss = harmonic_mean(ss_vals)
        sp = harmonic_mean(sp_vals)
        ss_points.append((degree, ss))
        sp_points.append((degree, sp))
        rows.append([degree, ss, sp, (ss - sp) / ss * 100.0])
    table = format_table(
        ["degree", "superscalar", "superpipelined", "gap %"], rows
    )
    chart = line_chart(
        {"superscalar": ss_points, "pipelined(super)": sp_points},
        title="harmonic-mean speedup vs degree",
        x_label="degree",
        y_label="speedup",
    )
    return Exhibit(
        ident="fig4-1",
        title="supersymmetry",
        text=table + "\n\n" + chart,
        data={"superscalar": ss_points, "superpipelined": sp_points},
        notes="paper: superpipelined slightly lower (startup transient), "
        "difference < 10%, decreasing in relative terms as both flatten",
    )


# --------------------------------------------------------------------- fig 4-2
def fig4_2() -> Exhibit:
    """Figure 4-2: start-up in superscalar vs superpipelined issue."""
    demo = pipeviz.demo_trace("independent", 6)
    ss = ideal_superscalar(3)
    sp = superpipelined(3)
    r_ss = simulate(demo, ss)
    r_sp = simulate(demo, sp)
    text = (
        pipeviz.render_pipeline(demo, ss)
        + f"\nlast result ready: {r_ss.base_cycles:.2f} base cycles\n\n"
        + pipeviz.render_pipeline(demo, sp)
        + f"\nlast result ready: {r_sp.base_cycles:.2f} base cycles"
    )
    return Exhibit(
        ident="fig4-2",
        title="start-up transient: 6 independent instructions, degree 3",
        text=text,
        data={"superscalar": r_ss.base_cycles, "superpipelined": r_sp.base_cycles},
        notes="paper: superscalar issues the last instruction at t1, the "
        "superpipelined machine at t5/3 — it gets behind at every branch "
        "target",
    )


# --------------------------------------------------------------------- fig 4-3
def fig4_3(max_n: int = 5, max_m: int = 5) -> Exhibit:
    """Figure 4-3: parallelism required for full utilization (= n*m)."""
    headers = ["m\\n"] + [str(n) for n in range(1, max_n + 1)]
    rows = []
    for m in range(max_m, 0, -1):
        rows.append(
            [str(m)] + [required_parallelism(n, m) for n in range(1, max_n + 1)]
        )
    table = format_table(headers, rows)
    marks = format_table(
        ["machine", "average degree of superpipelining"],
        [
            ["MultiTitan", machine_degree(multititan())],
            ["CRAY-1", machine_degree(cray1_config())],
        ],
    )
    return Exhibit(
        ident="fig4-3",
        title="parallelism required for full utilization",
        text=table + "\n\n" + marks,
        data={"multititan": machine_degree(multititan()),
              "cray1": machine_degree(cray1_config())},
        notes="paper: a (2,2) machine already needs parallelism 4; the "
        "CRAY-1 sits at 4.4 on the superpipelining axis",
    )


def cray1_config(width: int = 1) -> MachineConfig:
    """CRAY-1 with a configurable issue width (for Figure 4-4)."""
    return MachineConfig(
        name=f"cray1-w{width}",
        issue_width=width,
        latencies=dict(CRAY1_LATENCIES),
    )


def unit_latency_cray(width: int) -> MachineConfig:
    """The CRAY-1 as mis-modelled with unit latencies (Figure 4-4)."""
    return cray1_config(width).with_unit_latencies()


# --------------------------------------------------------------------- fig 4-4
def fig4_4(widths: tuple[int, ...] = (1, 2, 3, 4, 6, 8)) -> Exhibit:
    """Figure 4-4: CRAY-1 multiple issue with unit vs real latencies."""
    series: dict[str, list[tuple[float, float]]] = {"unit": [], "real": []}
    rows = []
    baselines: dict[str, float] = {}
    for label, factory in (("unit", unit_latency_cray), ("real", cray1_config)):
        for width in widths:
            cfg = factory(width)
            vals = []
            for bench in suite.all_benchmarks():
                run = suite.run_benchmark(
                    bench, suite.default_options(bench, schedule_for=cfg)
                )
                vals.append(simulate(run.trace, cfg).parallelism)
            mean = harmonic_mean(vals)
            if width == widths[0]:
                baselines[label] = mean
            series[label].append((width, mean / baselines[label]))
    for i, width in enumerate(widths):
        rows.append(
            [width,
             (series["unit"][i][1] - 1) * 100.0,
             (series["real"][i][1] - 1) * 100.0]
        )
    table = format_table(
        ["issue multiplicity", "unit-latency improvement %",
         "real-latency improvement %"], rows,
    )
    chart = line_chart(
        series, title="relative speedup vs issue multiplicity (CRAY-1)",
        x_label="issue width", y_label="speedup / single issue",
    )
    return Exhibit(
        ident="fig4-4",
        title="parallel issue with unit and real latencies (CRAY-1)",
        text=table + "\n\n" + chart,
        data=series,
        notes="paper: unit latencies suggest speedups up to 2.7; with real "
        "latencies there is almost no benefit from multiple issue",
    )


# --------------------------------------------------------------------- fig 4-5
def fig4_5(widths: tuple[int, ...] = _DEGREES) -> Exhibit:
    """Figure 4-5: instruction-level parallelism by benchmark."""
    series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for bench in suite.all_benchmarks():
        run = suite.run_benchmark(bench)
        points = []
        for width in widths:
            cfg = ideal_superscalar(width)
            points.append((width, simulate(run.trace, cfg).parallelism))
        series[bench.name] = points
        rows.append([bench.name] + [p[1] for p in points])
    table = format_table(
        ["benchmark"] + [f"n={w}" for w in widths], rows
    )
    chart = line_chart(
        series, title="speedup vs instruction issue multiplicity",
        x_label="issue multiplicity", y_label="speedup",
    )
    return Exhibit(
        ident="fig4-5",
        title="instruction-level parallelism by benchmark",
        text=table + "\n\n" + chart,
        data=series,
        notes="paper: yacc lowest (1.6); ccom, grr, stanford, met, whet "
        "about 2; livermore 2.5; unrolled linpack 3.2 — a factor of two "
        "spread under a low ceiling",
    )


# --------------------------------------------------------------------- fig 4-6
def fig4_6(
    factors: tuple[int, ...] = (1, 2, 4, 10),
    n_temp: int = 40,
) -> Exhibit:
    """Figure 4-6: parallelism vs loop unrolling (naive vs careful)."""
    regfile = RegisterFileSpec(n_temp=n_temp, n_home=26)
    measure_cfg = ideal_superscalar(64)
    series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for bench_name in ("linpack", "livermore"):
        bench = suite.get(bench_name)
        for careful in (False, True):
            label = f"{bench_name}.{'careful' if careful else 'naive'}"
            points = []
            for factor in factors:
                opts = CompilerOptions(
                    unroll=factor, careful=careful, regfile=regfile,
                )
                run = suite.run_benchmark(bench, opts)
                points.append(
                    (factor, simulate(run.trace, measure_cfg).parallelism)
                )
            series[label] = points
            rows.append([label] + [p[1] for p in points])
    table = format_table(
        ["benchmark.mode"] + [f"u={f}" for f in factors], rows
    )
    chart = line_chart(
        series, title="parallelism vs iterations unrolled",
        x_label="unroll factor", y_label="parallelism",
    )
    return Exhibit(
        ident="fig4-6",
        title="parallelism vs loop unrolling",
        text=table + "\n\n" + chart,
        data=series,
        notes="paper: naive unrolling is mostly flat after 4x (false "
        "conflicts between copies); careful unrolling (reassociation + "
        "store/load disambiguation) gives the dramatic improvement",
    )


# --------------------------------------------------------------------- fig 4-7
def fig4_7() -> Exhibit:
    """Figure 4-7: compiler optimization can raise or lower parallelism."""
    def graph(n_ops: int, depth: int) -> float:
        return n_ops / depth

    rows = [
        ["original: two comparable branches", 5, 3, graph(5, 3)],
        ["optimize the off-critical branch", 4, 3, graph(4, 3)],
        ["optimize the bottleneck", 3, 2, graph(3, 2)],
    ]
    table = format_table(
        ["expression graph", "operations", "critical path", "parallelism"],
        rows,
    )
    return Exhibit(
        ident="fig4-7",
        title="parallelism vs compiler optimizations (expression graphs)",
        text=table,
        data={r[0]: r[3] for r in rows},
        notes="paper: 1.67 -> 1.33 when optimizing a parallel branch, "
        "1.67 -> 1.50 when optimizing the bottleneck",
    )


# --------------------------------------------------------------------- fig 4-8
def fig4_8() -> Exhibit:
    """Figure 4-8: effect of optimization level on parallelism."""
    from ..opt.options import OptLevel

    regfile = RegisterFileSpec(n_temp=16, n_home=26)
    measure_cfg = ideal_superscalar(64)
    levels = list(OptLevel)
    series: dict[str, list[tuple[float, float]]] = {}
    rows = []
    for bench in suite.all_benchmarks():
        points = []
        for level in levels:
            opts = CompilerOptions(opt_level=level, regfile=regfile)
            run = suite.run_benchmark(bench, opts)
            points.append(
                (int(level), simulate(run.trace, measure_cfg).parallelism)
            )
        series[bench.name] = points
        rows.append([bench.name] + [p[1] for p in points])
    table = format_table(
        ["benchmark"] + [lvl.name.lower() for lvl in levels], rows
    )
    chart = line_chart(
        series, title="parallelism vs optimization level",
        x_label="optimization level (0=none .. 4=+regalloc)",
        y_label="parallelism",
    )
    return Exhibit(
        ident="fig4-8",
        title="effect of optimization on parallelism",
        text=table + "\n\n" + chart,
        data=series,
        notes="paper: scheduling adds 10-60%; classical optimization has "
        "little or negative effect; global register allocation helps the "
        "numeric benchmarks and slightly hurts the rest",
    )


# ------------------------------------------------------------------- table 5-1
def table5_1() -> Exhibit:
    """Table 5-1: the cost of cache misses."""
    rows = [
        [row.machine, row.cycles_per_instr, row.cycle_ns, row.memory_ns,
         row.miss_cost_cycles, row.miss_cost_instructions]
        for row in TABLE_5_1
    ]
    table = format_table(
        ["machine", "cycles/instr", "cycle (ns)", "memory (ns)",
         "miss cost (cycles)", "miss cost (instr)"],
        rows,
    )
    return Exhibit(
        ident="table5-1",
        title="the cost of cache misses",
        text=table,
        data={row.machine: row.miss_cost_instructions for row in TABLE_5_1},
        notes="paper: 0.6 / 8.6 / 140 instruction times",
    )


# ------------------------------------------------------------------ section 5.1
def sec5_1() -> Exhibit:
    """Section 5.1 example + measured miss dilution on the suite."""
    with_misses, without = parallel_issue_speedup_with_misses()
    rows = [["worked example (2.0cpi, triple issue)", without, with_misses]]

    # Measured: ideal superscalar-3 speedup with and without a small cache.
    cache = CacheConfig(size_words=256, line_words=4, miss_penalty=10)
    vals_nc, vals_c = [], []
    for bench in suite.all_benchmarks():
        run = suite.run_benchmark(bench)
        base_nc = simulate(run.trace, base_machine()).base_cycles
        wide_nc = simulate(run.trace, ideal_superscalar(3)).base_cycles
        base_c = simulate_with_cache(
            run.trace, base_machine(), cache
        ).timing.base_cycles
        wide_c = simulate_with_cache(
            run.trace, ideal_superscalar(3), cache
        ).timing.base_cycles
        vals_nc.append(base_nc / wide_nc)
        vals_c.append(base_c / wide_c)
    measured_nc = harmonic_mean(vals_nc)
    measured_c = harmonic_mean(vals_c)
    rows.append(["measured on suite (superscalar-3)", measured_nc, measured_c])
    table = format_table(
        ["case", "speedup ignoring misses", "speedup with misses"], rows
    )
    return Exhibit(
        ident="sec5-1",
        title="cache misses dilute parallel-issue speedup",
        text=table,
        data={"example": (without, with_misses),
              "measured": (measured_nc, measured_c)},
        notes="paper: 100% improvement shrinks to 33% once a 1.0-cpi miss "
        "burden is added",
    )


def multititan_config() -> MachineConfig:
    """MultiTitan preset re-exported for the harness."""
    return multititan()


def _prime_jobs() -> list[tuple]:
    """Every compile unit the exhibit drivers will request.

    Enumerating these lets :func:`run_all` push the whole compile load
    through the execution engine (parallel workers + on-disk trace
    cache) before the drivers run; the drivers then hit the in-process
    memo and only pay for timing simulation.
    """
    from ..opt.options import OptLevel

    jobs: list[tuple] = []
    benches = suite.all_benchmarks()
    for bench in benches:
        jobs.append((bench.name, suite.default_options(bench)))
    # fig4-1: scheduled for each superscalar/superpipelined degree
    for degree in _DEGREES:
        for cfg in (ideal_superscalar(degree), superpipelined(degree)):
            jobs += [(b.name, suite.default_options(b, schedule_for=cfg))
                     for b in benches]
    # fig4-4: CRAY-1 issue widths, unit and real latencies
    for factory in (unit_latency_cray, cray1_config):
        for width in (1, 2, 3, 4, 6, 8):
            cfg = factory(width)
            jobs += [(b.name, suite.default_options(b, schedule_for=cfg))
                     for b in benches]
    # fig4-6: unrolling study
    regfile40 = RegisterFileSpec(n_temp=40, n_home=26)
    for name in ("linpack", "livermore"):
        for careful in (False, True):
            for factor in (1, 2, 4, 10):
                jobs.append((name, CompilerOptions(
                    unroll=factor, careful=careful, regfile=regfile40,
                )))
    # fig4-8: optimization levels with the 16-temporary register file
    regfile16 = RegisterFileSpec(n_temp=16, n_home=26)
    for bench in benches:
        for level in OptLevel:
            jobs.append((bench.name, CompilerOptions(
                opt_level=level, regfile=regfile16,
            )))
    return jobs


def prime_all_exhibits(
    workers: int = 1, cache=None, recorder: Recorder | None = None,
    flow=None,
):
    """Precompute every exhibit compile unit through the engine.

    Returns the :class:`~repro.engine.executor.EngineReport`; the runs
    land in the suite memo (and the on-disk cache, when given), so a
    following :func:`run_all` recompiles nothing.

    ``flow`` (a :class:`~repro.flow.flows.FlowContext`) pushes the
    compiles through the checkpointed workflow DAG instead of
    :func:`~repro.engine.executor.prime_runs`: each compile unit is a
    journaled, resumable node that lands in the disk cache, and the
    parent then seeds the in-process memo from the warm cache.
    """
    from ..engine.executor import prime_runs

    jobs = _prime_jobs()
    if flow is not None:
        report = _prime_flow(jobs, workers=workers, flow=flow)
    else:
        report = prime_runs(jobs, workers=workers, cache=cache)
    rec = active_recorder(recorder)
    if rec.enabled:
        rec.emit("engine", **report.as_dict())
    return report


def _prime_flow(jobs: list[tuple], *, workers: int, flow):
    """Prime via flow nodes, then memo-seed from the warm disk cache."""
    from ..engine.executor import EngineReport, _prime_one
    from ..flow.engine import run_flow
    from ..flow.flows import PRIME_RUNNERS, _require_cache, prime_flow

    cache = _require_cache(flow)
    dag = prime_flow(jobs, cache.root)
    start = time.perf_counter()
    fr = run_flow(
        dag, PRIME_RUNNERS,
        root=cache.root,
        flow_kind="prime",
        flow_spec=flow.flow_spec,
        run_id=flow.run_id,
        workers=workers,
        policy=flow.policy,
        faults=flow.faults,
        kill_action=flow.kill_action,
    )
    flow.result = fr
    # The flow compiled into the disk cache (possibly in workers);
    # pull every job through it once to warm the in-process run memo
    # the exhibit drivers consult.
    hits = misses = 0
    for benchmark, options in jobs:
        _, cached = _prime_one(benchmark, options, cache)
        hits, misses = hits + cached, misses + (not cached)
    seconds = time.perf_counter() - start
    return EngineReport(
        workers=workers,
        cells=0,
        groups=len(dag),
        cache_hits=hits,
        cache_misses=misses,
        seconds=seconds,
        compile_seconds=seconds,
    )


ALL_EXHIBITS = {
    "fig1-1": fig1_1,
    "fig2-1..8": fig2_diagrams,
    "table2-1": table2_1,
    "fig4-1": fig4_1,
    "fig4-2": fig4_2,
    "fig4-3": fig4_3,
    "fig4-4": fig4_4,
    "fig4-5": fig4_5,
    "fig4-6": fig4_6,
    "fig4-7": fig4_7,
    "fig4-8": fig4_8,
    "table5-1": table5_1,
    "sec5-1": sec5_1,
}


def run_all(
    recorder: Recorder | None = None,
    workers: int = 1,
    cache=None,
) -> list[Exhibit]:
    """Run every exhibit in paper order.

    ``recorder`` (optional) receives one ``exhibit`` event per exhibit
    with its ident, title and wall time, so regenerating the paper's
    tables and figures can produce a machine-readable run report.
    With ``workers>1`` (or a trace ``cache``) every compile unit the
    exhibits need is first pushed through the execution engine, so the
    drivers themselves only pay for timing simulation.
    """
    rec = active_recorder(recorder)
    if workers > 1 or (cache is not None and cache.enabled):
        prime_all_exhibits(workers=workers, cache=cache, recorder=rec)
    exhibits: list[Exhibit] = []
    for factory in ALL_EXHIBITS.values():
        start = time.perf_counter()
        exhibit = factory()
        rec.emit(
            "exhibit",
            ident=exhibit.ident,
            title=exhibit.title,
            seconds=time.perf_counter() - start,
        )
        rec.incr("exhibits")
        exhibits.append(exhibit)
    return exhibits

"""Dynamic basic-block statistics.

The paper's central number — roughly two instructions of parallelism —
is a *consequence* of two facts: basic blocks are short (a branch every
handful of instructions) and the code inside a block is chained.  This
module measures the first fact directly from traces, which makes the
ILP ceiling interpretable: with in-order issue and block-scoped
scheduling, the dynamic block length is a hard upper bound on how much
work the scheduler even gets to rearrange.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.trace import Trace


@dataclass(frozen=True, slots=True)
class BlockStats:
    """Dynamic control-flow statistics of one trace."""

    instructions: int
    dynamic_blocks: int
    branch_instructions: int
    histogram: tuple[tuple[int, int], ...]   # (block length, count)

    @property
    def mean_block_length(self) -> float:
        """Average dynamic instructions between control transfers."""
        if self.dynamic_blocks == 0:
            return 0.0
        return self.instructions / self.dynamic_blocks

    @property
    def branch_frequency(self) -> float:
        """Fraction of dynamic instructions that are branches."""
        if self.instructions == 0:
            return 0.0
        return self.branch_instructions / self.instructions


def block_stats(trace: Trace, max_bucket: int = 16) -> BlockStats:
    """Measure dynamic basic-block lengths of ``trace``.

    A dynamic block ends at every control-transfer instruction
    (conditional branch, jump, call, return, halt).  Lengths above
    ``max_bucket`` share the final histogram bucket.
    """
    is_branch = [ins.op.info.is_branch or ins.op.value == "halt"
                 for ins in trace.static]
    histogram = [0] * (max_bucket + 1)
    blocks = 0
    branches = 0
    current = 0
    for si in trace.ops:
        current += 1
        if is_branch[si]:
            branches += 1
            blocks += 1
            histogram[min(current, max_bucket)] += 1
            current = 0
    if current:
        blocks += 1
        histogram[min(current, max_bucket)] += 1
    pairs = tuple(
        (length, count)
        for length, count in enumerate(histogram)
        if count
    )
    return BlockStats(
        instructions=len(trace),
        dynamic_blocks=blocks,
        branch_instructions=branches,
        histogram=pairs,
    )

"""Assembly-style pretty printing for instructions and programs."""

from __future__ import annotations

from .instruction import Instruction
from .opcodes import Opcode
from .program import Function, Program


def format_instruction(ins: Instruction) -> str:
    """Render one instruction in a readable assembly syntax."""
    op = ins.op
    parts: list[str]
    if op is Opcode.LW:
        off = f"#{ins.frame_slot}" if ins.frame_slot is not None else str(ins.imm)
        parts = [f"{op.value} {ins.dest.name} <- {off}({ins.srcs[0].name})"]
    elif op is Opcode.SW:
        off = f"#{ins.frame_slot}" if ins.frame_slot is not None else str(ins.imm)
        parts = [f"{op.value} {off}({ins.srcs[1].name}) <- {ins.srcs[0].name}"]
    elif op in (Opcode.LI, Opcode.LIF):
        parts = [f"{op.value} {ins.dest.name} <- {ins.imm}"]
    elif op in (Opcode.BEQZ, Opcode.BNEZ):
        parts = [f"{op.value} {ins.srcs[0].name}, {ins.target}"]
    elif op is Opcode.J:
        parts = [f"{op.value} {ins.target}"]
    elif op is Opcode.CALL:
        parts = [f"{op.value} {ins.target}"]
    elif op in (Opcode.RET, Opcode.NOP, Opcode.HALT):
        parts = [op.value]
    else:
        operands = ", ".join(s.name for s in ins.srcs)
        if op.info.has_imm:
            operands = f"{operands}, {ins.imm}" if operands else str(ins.imm)
        dest = f"{ins.dest.name} <- " if ins.dest is not None else ""
        parts = [f"{op.value} {dest}{operands}"]
    text = parts[0]
    if ins.mem is not None:
        text += f"    ; {ins.mem.obj}"
        if ins.mem.offset is not None:
            text += f"+{ins.mem.offset}"
    if ins.comment:
        text += f"    ; {ins.comment}"
    return text


def format_function(fn: Function) -> str:
    """Render a whole function with block labels."""
    lines = [f"func {fn.name}(frame={fn.frame_slots}):"]
    for block in fn.blocks:
        lines.append(f"{block.label}:")
        for ins in block.instrs:
            lines.append(f"    {format_instruction(ins)}")
    return "\n".join(lines)


def format_program(prog: Program) -> str:
    """Render a whole program: globals then functions."""
    lines = []
    for g in prog.globals_.values():
        kind = "float" if g.is_float else "int"
        lines.append(f"global {g.name}: {kind}[{g.size}] @ {g.address}")
    for fn in prog.functions.values():
        lines.append("")
        lines.append(format_function(fn))
    return "\n".join(lines)

"""Basic blocks, functions, programs, and CFG utilities.

A :class:`Function` is a list of basic blocks in *layout order*: block 0 is
the entry, and a block whose terminator is a conditional branch (or that has
no terminator at all) falls through to the next block in layout order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .instruction import Instruction
from .opcodes import Opcode


@dataclass(slots=True)
class BasicBlock:
    """A straight-line sequence of instructions with a unique label."""

    label: str
    instrs: list[Instruction] = field(default_factory=list)

    @property
    def terminator(self) -> Instruction | None:
        """The trailing terminator instruction, if present."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def body(self) -> list[Instruction]:
        """Instructions excluding the trailing terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)


@dataclass(slots=True)
class Function:
    """A compiled function: labelled basic blocks in layout order."""

    name: str
    blocks: list[BasicBlock] = field(default_factory=list)
    frame_slots: int = 0          # number of stack slots in this frame
    params: tuple[str, ...] = ()  # parameter names, for diagnostics
    #: storage-object -> home register, filled in by global register
    #: allocation; the scheduler's memory disambiguation consults it.
    home_bindings: dict = field(default_factory=dict)

    def block_map(self) -> dict[str, BasicBlock]:
        """Label -> block mapping."""
        return {b.label: b for b in self.blocks}

    def block_index(self) -> dict[str, int]:
        """Label -> layout-position mapping."""
        return {b.label: i for i, b in enumerate(self.blocks)}

    def successors(self) -> dict[str, list[str]]:
        """CFG successor labels for every block, in layout order.

        A conditional branch yields ``[taken, fallthrough]``; an
        unconditional jump yields its target only; ``RET``/``HALT`` yield
        nothing; a block with no terminator falls through.
        """
        succ: dict[str, list[str]] = {}
        for i, block in enumerate(self.blocks):
            out: list[str] = []
            term = block.terminator
            next_label = (
                self.blocks[i + 1].label if i + 1 < len(self.blocks) else None
            )
            if term is None:
                if next_label is not None:
                    out.append(next_label)
            elif term.op in (Opcode.BEQZ, Opcode.BNEZ):
                assert term.target is not None
                out.append(term.target)
                if next_label is not None:
                    out.append(next_label)
            elif term.op is Opcode.J:
                assert term.target is not None
                out.append(term.target)
            # RET / HALT: no successors
            succ[block.label] = out
        return succ

    def predecessors(self) -> dict[str, list[str]]:
        """CFG predecessor labels for every block."""
        pred: dict[str, list[str]] = {b.label: [] for b in self.blocks}
        for label, outs in self.successors().items():
            for s in outs:
                pred[s].append(label)
        return pred

    def instructions(self):
        """Iterate over all instructions in layout order."""
        for block in self.blocks:
            yield from block.instrs

    def instruction_count(self) -> int:
        """Static instruction count."""
        return sum(len(b.instrs) for b in self.blocks)

    def rpo(self) -> list[str]:
        """Reverse postorder of reachable blocks from the entry."""
        succ = self.successors()
        seen: set[str] = set()
        order: list[str] = []

        entry = self.blocks[0].label
        stack: list[tuple[str, int]] = [(entry, 0)]
        seen.add(entry)
        while stack:
            label, i = stack[-1]
            outs = succ[label]
            if i < len(outs):
                stack[-1] = (label, i + 1)
                nxt = outs[i]
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                order.append(label)
        order.reverse()
        return order

    def validate(self) -> None:
        """Structural sanity checks; raises ``ValueError`` on violation."""
        labels = [b.label for b in self.blocks]
        if len(labels) != len(set(labels)):
            raise ValueError(f"{self.name}: duplicate block labels")
        label_set = set(labels)
        for block in self.blocks:
            for k, ins in enumerate(block.instrs):
                ins.validate()
                if ins.is_terminator and k != len(block.instrs) - 1:
                    raise ValueError(
                        f"{self.name}/{block.label}: terminator "
                        f"{ins.op.value} not at block end"
                    )
                if ins.op in (Opcode.BEQZ, Opcode.BNEZ, Opcode.J):
                    if ins.target not in label_set:
                        raise ValueError(
                            f"{self.name}/{block.label}: unknown branch "
                            f"target {ins.target!r}"
                        )
        last = self.blocks[-1]
        if last.terminator is None:
            raise ValueError(f"{self.name}: final block must end in terminator")


@dataclass(slots=True)
class GlobalVar:
    """Layout record for one global variable or array."""

    name: str
    address: int          # word address of the first element
    size: int             # in words
    is_float: bool = False
    initial: list[int | float] | None = None


@dataclass(slots=True)
class Program:
    """A whole compiled program.

    ``functions`` maps name -> :class:`Function`.  ``globals_`` maps global
    name -> layout record.  ``entry`` is the function the simulator's start
    stub calls; its integer return value is the program result (each
    benchmark returns a checksum there).
    """

    functions: dict[str, Function] = field(default_factory=dict)
    globals_: dict[str, GlobalVar] = field(default_factory=dict)
    entry: str = "main"
    data_size: int = 0    # words of global data

    def validate(self) -> None:
        """Validate every function and cross-function call targets."""
        if self.entry not in self.functions:
            raise ValueError(f"entry function {self.entry!r} not defined")
        for fn in self.functions.values():
            fn.validate()
            for ins in fn.instructions():
                if ins.op is Opcode.CALL and ins.target not in self.functions:
                    raise ValueError(
                        f"{fn.name}: call to undefined function {ins.target!r}"
                    )

    def instruction_count(self) -> int:
        """Total static instruction count across functions."""
        return sum(f.instruction_count() for f in self.functions.values())


def compute_dominators(fn: Function) -> dict[str, set[str]]:
    """Dominator sets for every reachable block (iterative dataflow).

    Unreachable blocks are given dominator set = all blocks, the
    conventional bottom value.
    """
    order = fn.rpo()
    all_labels = {b.label for b in fn.blocks}
    preds = fn.predecessors()
    entry = fn.blocks[0].label
    dom: dict[str, set[str]] = {label: set(all_labels) for label in all_labels}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for label in order:
            if label == entry:
                continue
            reachable_preds = [p for p in preds[label] if p in order or p == entry]
            new: set[str] | None = None
            for p in reachable_preds:
                new = set(dom[p]) if new is None else new & dom[p]
            if new is None:
                new = set()
            new.add(label)
            if new != dom[label]:
                dom[label] = new
                changed = True
    return dom


def natural_loops(fn: Function) -> list[tuple[str, set[str]]]:
    """Natural loops of ``fn`` as ``(header, body-labels)`` pairs.

    A back edge is an edge ``t -> h`` where ``h`` dominates ``t``.  Loops
    sharing a header are merged.  Only reachable blocks participate.  The
    returned list is sorted innermost first (smaller bodies first).
    """
    dom = compute_dominators(fn)
    succ = fn.successors()
    reachable = set(fn.rpo())
    loops: dict[str, set[str]] = {}
    preds = fn.predecessors()
    for tail, outs in succ.items():
        if tail not in reachable:
            continue
        for head in outs:
            if head in dom.get(tail, set()):
                body = {head, tail}
                stack = [tail]
                while stack:
                    node = stack.pop()
                    if node == head:
                        continue
                    for p in preds[node]:
                        if p not in body and p in reachable:
                            body.add(p)
                            stack.append(p)
                loops.setdefault(head, set()).update(body)
    result = [(h, b) for h, b in loops.items()]
    result.sort(key=lambda item: len(item[1]))
    return result


def remove_unreachable_blocks(fn: Function) -> int:
    """Drop blocks unreachable from the entry; returns the removal count.

    Safe with fallthrough layout: an unreachable block by definition has
    no fallthrough predecessor, so splicing it out cannot redirect flow.
    """
    reachable = set(fn.rpo())
    before = len(fn.blocks)
    fn.blocks = [b for b in fn.blocks if b.label in reachable]
    return before - len(fn.blocks)


def loop_depths(fn: Function) -> dict[str, int]:
    """Loop-nesting depth of each block (0 = not in any loop)."""
    depths = {b.label: 0 for b in fn.blocks}
    for _, body in natural_loops(fn):
        for label in body:
            depths[label] += 1
    return depths

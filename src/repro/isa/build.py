"""Convenience constructors for instructions.

These keep code generation and tests terse and enforce operand arity at
construction time.
"""

from __future__ import annotations

from .instruction import Instruction, MemRef
from .opcodes import Opcode
from .registers import RA, Reg


def alu(op: Opcode, dest: Reg, a: Reg, b: Reg) -> Instruction:
    """Three-register ALU operation ``dest <- a op b``."""
    ins = Instruction(op, dest=dest, srcs=(a, b))
    ins.validate()
    return ins


def alui(op: Opcode, dest: Reg, a: Reg, imm: int) -> Instruction:
    """Register-immediate ALU operation ``dest <- a op imm``."""
    ins = Instruction(op, dest=dest, srcs=(a,), imm=imm)
    ins.validate()
    return ins


def unary(op: Opcode, dest: Reg, a: Reg) -> Instruction:
    """One-source operation (``MOV``, ``FNEG``, conversions)."""
    ins = Instruction(op, dest=dest, srcs=(a,))
    ins.validate()
    return ins


def li(dest: Reg, value: int) -> Instruction:
    """Load integer immediate."""
    return Instruction(Opcode.LI, dest=dest, imm=int(value))


def lif(dest: Reg, value: float) -> Instruction:
    """Load floating-point immediate."""
    return Instruction(Opcode.LIF, dest=dest, imm=float(value))


def mov(dest: Reg, src: Reg) -> Instruction:
    """Register-to-register move."""
    return Instruction(Opcode.MOV, dest=dest, srcs=(src,))


def lw(
    dest: Reg,
    base: Reg,
    offset: int = 0,
    mem: MemRef | None = None,
    frame_slot: int | None = None,
) -> Instruction:
    """Load word ``dest <- offset(base)``."""
    return Instruction(
        Opcode.LW, dest=dest, srcs=(base,), imm=offset,
        mem=mem, frame_slot=frame_slot,
    )


def sw(
    value: Reg,
    base: Reg,
    offset: int = 0,
    mem: MemRef | None = None,
    frame_slot: int | None = None,
) -> Instruction:
    """Store word ``offset(base) <- value``."""
    return Instruction(
        Opcode.SW, srcs=(value, base), imm=offset,
        mem=mem, frame_slot=frame_slot,
    )


def beqz(cond: Reg, target: str) -> Instruction:
    """Branch to ``target`` if ``cond`` is zero."""
    return Instruction(Opcode.BEQZ, srcs=(cond,), target=target)


def bnez(cond: Reg, target: str) -> Instruction:
    """Branch to ``target`` if ``cond`` is non-zero."""
    return Instruction(Opcode.BNEZ, srcs=(cond,), target=target)


def jump(target: str) -> Instruction:
    """Unconditional jump."""
    return Instruction(Opcode.J, target=target)


def call(func: str) -> Instruction:
    """Call ``func``; writes the return address into ``ra``."""
    return Instruction(Opcode.CALL, dest=RA, target=func)


def ret() -> Instruction:
    """Return through ``ra``."""
    return Instruction(Opcode.RET, srcs=(RA,))


def nop() -> Instruction:
    """No operation."""
    return Instruction(Opcode.NOP)


def halt() -> Instruction:
    """Stop simulation."""
    return Instruction(Opcode.HALT)

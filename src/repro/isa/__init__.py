"""The MultiTitan-like RISC instruction set and program representation."""

from .instruction import Instruction, MemRef
from .opcodes import (
    COMPARE_IMM_FORM,
    SIMPLE_CLASSES,
    TERMINATORS,
    InstrClass,
    Opcode,
    OpcodeInfo,
)
from .program import (
    BasicBlock,
    Function,
    GlobalVar,
    Program,
    compute_dominators,
    loop_depths,
    natural_loops,
)
from .printer import format_function, format_instruction, format_program
from .registers import (
    ARG_REGS,
    RA,
    RV,
    SCRATCH0,
    SCRATCH1,
    SP,
    ZERO,
    Reg,
    RegisterFileSpec,
    VirtualRegAllocator,
    virtual,
)
from . import build

__all__ = [
    "ARG_REGS",
    "BasicBlock",
    "COMPARE_IMM_FORM",
    "Function",
    "GlobalVar",
    "InstrClass",
    "Instruction",
    "MemRef",
    "Opcode",
    "OpcodeInfo",
    "Program",
    "RA",
    "RV",
    "Reg",
    "RegisterFileSpec",
    "SCRATCH0",
    "SCRATCH1",
    "SIMPLE_CLASSES",
    "SP",
    "TERMINATORS",
    "VirtualRegAllocator",
    "ZERO",
    "build",
    "compute_dominators",
    "format_function",
    "format_instruction",
    "format_program",
    "loop_depths",
    "natural_loops",
    "virtual",
]

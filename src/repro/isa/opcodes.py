"""Opcodes and instruction classes of the MultiTitan-like RISC target.

The paper groups operations into *fourteen classes* "selected so that
operations in a given class are likely to have identical pipeline behavior
in any machine" (Section 3).  :class:`InstrClass` reproduces that grouping;
machine descriptions assign one operation latency per class and map classes
onto functional units.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class InstrClass(enum.Enum):
    """The fourteen instruction classes of the machine description."""

    LOGICAL = "logical"      # and/or/xor and immediates
    SHIFT = "shift"          # shifts
    ADDSUB = "addsub"        # integer add/sub and integer compares
    INTMUL = "intmul"        # integer multiply
    INTDIV = "intdiv"        # integer divide / remainder
    LOAD = "load"            # single-word load
    STORE = "store"          # single-word store
    BRANCH = "branch"        # branches, jumps, calls, returns
    FPADD = "fpadd"          # FP add/sub/negate and FP compares
    FPMUL = "fpmul"          # FP multiply
    FPDIV = "fpdiv"          # FP divide
    FPCVT = "fpcvt"          # int<->float conversions
    MOVE = "move"            # register moves and immediate loads
    MISC = "misc"            # nop, halt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


#: Classes the paper calls "simple operations": the vast majority of
#: executed operations (Section 2 definitions).  Divides are excluded.
SIMPLE_CLASSES = frozenset(
    {
        InstrClass.LOGICAL,
        InstrClass.SHIFT,
        InstrClass.ADDSUB,
        InstrClass.LOAD,
        InstrClass.STORE,
        InstrClass.BRANCH,
        InstrClass.FPADD,
        InstrClass.FPMUL,
        InstrClass.MOVE,
        InstrClass.FPCVT,
        InstrClass.MISC,
    }
)


@dataclass(frozen=True, slots=True)
class OpcodeInfo:
    """Static properties of one opcode.

    ``n_srcs`` counts register sources; ``has_dest`` says whether the opcode
    writes a register; ``has_imm`` whether an immediate operand is required;
    ``is_branch``/``is_cond_branch``/``is_mem`` classify control and memory
    behaviour for the scheduler and simulator.
    """

    klass: InstrClass
    n_srcs: int
    has_dest: bool
    has_imm: bool = False
    is_branch: bool = False
    is_cond_branch: bool = False
    is_load: bool = False
    is_store: bool = False
    commutative: bool = False

    @property
    def is_mem(self) -> bool:
        return self.is_load or self.is_store


class Opcode(enum.Enum):
    """All opcodes of the target instruction set."""

    # Integer arithmetic (ADDSUB / INTMUL / INTDIV classes)
    ADD = "add"
    SUB = "sub"
    ADDI = "addi"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    # Integer compares (results are 0/1 in a register; ADDSUB class)
    SEQ = "seq"
    SNE = "sne"
    SLT = "slt"
    SLE = "sle"
    SGT = "sgt"
    SGE = "sge"
    SEQI = "seqi"
    SNEI = "snei"
    SLTI = "slti"
    SLEI = "slei"
    SGTI = "sgti"
    SGEI = "sgei"
    # Logical
    AND = "and"
    OR = "or"
    XOR = "xor"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    # Shifts
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    # Moves / immediates
    LI = "li"        # load integer immediate
    LIF = "lif"      # load float immediate
    MOV = "mov"      # register-to-register move
    # Memory (word addressed, base register + immediate offset)
    LW = "lw"
    SW = "sw"
    # Floating point
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FEQ = "feq"
    FNE = "fne"
    FLT = "flt"
    FLE = "fle"
    CVTIF = "cvtif"  # int -> float
    CVTFI = "cvtfi"  # float -> int (truncate)
    # Control
    BEQZ = "beqz"
    BNEZ = "bnez"
    J = "j"
    CALL = "call"
    RET = "ret"
    # Misc
    NOP = "nop"
    HALT = "halt"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    @property
    def info(self) -> OpcodeInfo:
        """Static properties of this opcode."""
        return _INFO[self]

    @property
    def klass(self) -> InstrClass:
        """The instruction class this opcode belongs to."""
        return _INFO[self].klass


def _alu3(klass: InstrClass, commutative: bool = False) -> OpcodeInfo:
    return OpcodeInfo(klass, n_srcs=2, has_dest=True, commutative=commutative)


def _alu_imm(klass: InstrClass, commutative: bool = False) -> OpcodeInfo:
    return OpcodeInfo(
        klass, n_srcs=1, has_dest=True, has_imm=True, commutative=commutative
    )


_INFO: dict[Opcode, OpcodeInfo] = {
    Opcode.ADD: _alu3(InstrClass.ADDSUB, commutative=True),
    Opcode.SUB: _alu3(InstrClass.ADDSUB),
    Opcode.ADDI: _alu_imm(InstrClass.ADDSUB),
    Opcode.MUL: _alu3(InstrClass.INTMUL, commutative=True),
    Opcode.DIV: _alu3(InstrClass.INTDIV),
    Opcode.MOD: _alu3(InstrClass.INTDIV),
    Opcode.SEQ: _alu3(InstrClass.ADDSUB, commutative=True),
    Opcode.SNE: _alu3(InstrClass.ADDSUB, commutative=True),
    Opcode.SLT: _alu3(InstrClass.ADDSUB),
    Opcode.SLE: _alu3(InstrClass.ADDSUB),
    Opcode.SGT: _alu3(InstrClass.ADDSUB),
    Opcode.SGE: _alu3(InstrClass.ADDSUB),
    Opcode.SEQI: _alu_imm(InstrClass.ADDSUB),
    Opcode.SNEI: _alu_imm(InstrClass.ADDSUB),
    Opcode.SLTI: _alu_imm(InstrClass.ADDSUB),
    Opcode.SLEI: _alu_imm(InstrClass.ADDSUB),
    Opcode.SGTI: _alu_imm(InstrClass.ADDSUB),
    Opcode.SGEI: _alu_imm(InstrClass.ADDSUB),
    Opcode.AND: _alu3(InstrClass.LOGICAL, commutative=True),
    Opcode.OR: _alu3(InstrClass.LOGICAL, commutative=True),
    Opcode.XOR: _alu3(InstrClass.LOGICAL, commutative=True),
    Opcode.ANDI: _alu_imm(InstrClass.LOGICAL),
    Opcode.ORI: _alu_imm(InstrClass.LOGICAL),
    Opcode.XORI: _alu_imm(InstrClass.LOGICAL),
    Opcode.SLL: _alu3(InstrClass.SHIFT),
    Opcode.SRL: _alu3(InstrClass.SHIFT),
    Opcode.SRA: _alu3(InstrClass.SHIFT),
    Opcode.SLLI: _alu_imm(InstrClass.SHIFT),
    Opcode.SRLI: _alu_imm(InstrClass.SHIFT),
    Opcode.SRAI: _alu_imm(InstrClass.SHIFT),
    Opcode.LI: OpcodeInfo(InstrClass.MOVE, n_srcs=0, has_dest=True, has_imm=True),
    Opcode.LIF: OpcodeInfo(InstrClass.MOVE, n_srcs=0, has_dest=True, has_imm=True),
    Opcode.MOV: OpcodeInfo(InstrClass.MOVE, n_srcs=1, has_dest=True),
    Opcode.LW: OpcodeInfo(
        InstrClass.LOAD, n_srcs=1, has_dest=True, has_imm=True, is_load=True
    ),
    Opcode.SW: OpcodeInfo(
        InstrClass.STORE, n_srcs=2, has_dest=False, has_imm=True, is_store=True
    ),
    Opcode.FADD: _alu3(InstrClass.FPADD, commutative=True),
    Opcode.FSUB: _alu3(InstrClass.FPADD),
    Opcode.FMUL: _alu3(InstrClass.FPMUL, commutative=True),
    Opcode.FDIV: _alu3(InstrClass.FPDIV),
    Opcode.FNEG: OpcodeInfo(InstrClass.FPADD, n_srcs=1, has_dest=True),
    Opcode.FEQ: _alu3(InstrClass.FPADD, commutative=True),
    Opcode.FNE: _alu3(InstrClass.FPADD, commutative=True),
    Opcode.FLT: _alu3(InstrClass.FPADD),
    Opcode.FLE: _alu3(InstrClass.FPADD),
    Opcode.CVTIF: OpcodeInfo(InstrClass.FPCVT, n_srcs=1, has_dest=True),
    Opcode.CVTFI: OpcodeInfo(InstrClass.FPCVT, n_srcs=1, has_dest=True),
    Opcode.BEQZ: OpcodeInfo(
        InstrClass.BRANCH, n_srcs=1, has_dest=False,
        is_branch=True, is_cond_branch=True,
    ),
    Opcode.BNEZ: OpcodeInfo(
        InstrClass.BRANCH, n_srcs=1, has_dest=False,
        is_branch=True, is_cond_branch=True,
    ),
    Opcode.J: OpcodeInfo(InstrClass.BRANCH, n_srcs=0, has_dest=False, is_branch=True),
    Opcode.CALL: OpcodeInfo(
        InstrClass.BRANCH, n_srcs=0, has_dest=True, is_branch=True
    ),
    Opcode.RET: OpcodeInfo(
        InstrClass.BRANCH, n_srcs=1, has_dest=False, is_branch=True
    ),
    Opcode.NOP: OpcodeInfo(InstrClass.MISC, n_srcs=0, has_dest=False),
    Opcode.HALT: OpcodeInfo(InstrClass.MISC, n_srcs=0, has_dest=False),
}

#: Opcodes that terminate a basic block when they appear last.
TERMINATORS = frozenset(
    {Opcode.BEQZ, Opcode.BNEZ, Opcode.J, Opcode.RET, Opcode.HALT}
)

#: Integer compare opcode -> its immediate-operand twin.
COMPARE_IMM_FORM = {
    Opcode.SEQ: Opcode.SEQI,
    Opcode.SNE: Opcode.SNEI,
    Opcode.SLT: Opcode.SLTI,
    Opcode.SLE: Opcode.SLEI,
    Opcode.SGT: Opcode.SGTI,
    Opcode.SGE: Opcode.SGEI,
}

"""Instruction and memory-reference representation.

Instructions are mutable because optimization passes rewrite operands in
place.  Memory instructions carry a :class:`MemRef` describing *what object*
they touch; the scheduler's alias analysis uses it to decide whether two
memory operations may conflict ("the scheduler must assume that two memory
locations are the same unless it can prove otherwise", Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .opcodes import Opcode
from .registers import Reg


@dataclass(frozen=True, slots=True)
class MemRef:
    """Symbolic description of a memory access for alias analysis.

    ``obj`` names the storage object: ``g:<name>`` for a global variable or
    array, ``frame:<func>:<slot-or-array>`` for stack storage, or
    ``param:<func>:<name>`` for storage reached through an array parameter.

    ``offset`` is the constant word offset within the object when the access
    address is statically known (scalar accesses, constant array indices);
    ``None`` when the offset is computed at run time.

    ``affine`` disambiguates accesses whose index is ``var + c`` for a loop
    variable ``var``: the pair ``(var_key, c)``.  Two accesses to the same
    object with the same ``var_key`` but different constants are provably
    disjoint *provided* ``var`` is not redefined between them; the careful
    loop unroller produces such accesses and the dependence DAG checks the
    no-redefinition side condition.

    ``may_alias_all`` marks accesses through array parameters, which may
    refer to any array in the program until interprocedural alias analysis
    narrows them down.  ``is_array`` distinguishes array storage from
    scalar storage (an array parameter can never be bound to a scalar).
    """

    obj: str
    offset: int | None = None
    affine: tuple[str, int] | None = None
    #: storage objects of the scalar variables appearing in the affine
    #: core; the no-redefinition side condition is checked against these.
    affine_vars: tuple[str, ...] = ()
    may_alias_all: bool = False
    is_array: bool = False

    def with_offset(self, offset: int | None) -> "MemRef":
        """Return a copy with a different constant offset."""
        return replace(self, offset=offset)


@dataclass(slots=True)
class Instruction:
    """One machine instruction.

    ``dest`` is the written register (or ``None``), ``srcs`` the register
    sources in operand order.  For ``SW`` the sources are ``(value, base)``.
    ``imm`` holds the immediate / offset / literal operand, ``target`` the
    label of a branch or the callee name of a ``CALL``.

    ``frame_slot`` marks stack accesses whose final immediate offset is a
    frame-slot index to be resolved once the frame size is known (see
    ``repro.opt.frame``).
    """

    op: Opcode
    dest: Reg | None = None
    srcs: tuple[Reg, ...] = ()
    imm: int | float | None = None
    target: str | None = None
    mem: MemRef | None = None
    frame_slot: int | None = None
    comment: str = field(default="", compare=False)

    def copy(self) -> "Instruction":
        """Return a shallow copy (operands are immutable, so this is safe)."""
        return Instruction(
            op=self.op,
            dest=self.dest,
            srcs=self.srcs,
            imm=self.imm,
            target=self.target,
            mem=self.mem,
            frame_slot=self.frame_slot,
            comment=self.comment,
        )

    def validate(self) -> None:
        """Check operand arity against the opcode's static properties."""
        info = self.op.info
        if len(self.srcs) != info.n_srcs:
            raise ValueError(
                f"{self.op.value}: expected {info.n_srcs} sources, "
                f"got {len(self.srcs)}"
            )
        if info.has_dest and self.dest is None and self.op is not Opcode.CALL:
            raise ValueError(f"{self.op.value}: missing destination")
        if not info.has_dest and self.dest is not None:
            raise ValueError(f"{self.op.value}: unexpected destination")
        if info.has_imm and self.imm is None and self.frame_slot is None:
            raise ValueError(f"{self.op.value}: missing immediate")
        if info.is_branch and self.op not in (Opcode.RET,) and self.target is None:
            raise ValueError(f"{self.op.value}: missing target")

    @property
    def is_terminator(self) -> bool:
        """True if this instruction ends a basic block."""
        from .opcodes import TERMINATORS

        return self.op in TERMINATORS

    def regs_read(self) -> tuple[Reg, ...]:
        """Registers read by this instruction."""
        return self.srcs

    def reg_written(self) -> Reg | None:
        """The register written by this instruction, if any."""
        return self.dest

    def __str__(self) -> str:
        from .printer import format_instruction

        return format_instruction(self)

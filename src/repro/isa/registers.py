"""Register model for the MultiTitan-like RISC target.

The paper's compiler divides the register file into two disjoint parts:
*expression temporaries* and *home locations* for global register allocation
(Section 3).  We mirror that split.  The physical register file is laid out
as follows (word-sized, unified integer/float, as in a simulator we store
Python ints or floats directly):

====================  =======================================================
index                 role
====================  =======================================================
0                     hardwired zero (``zero``)
1                     stack pointer (``sp``)
2                     return address (``ra``)
3                     scalar return value (``rv``)
4 .. 9                argument registers (``a0`` .. ``a5``)
10 .. 11              allocator scratch registers (spill reload targets)
12 .. 12+T-1          expression temporaries (``t0`` .. )
12+T .. 12+T+H-1      home registers for global register allocation
====================  =======================================================

``T`` (temporary count) and ``H`` (home count) are compile-time knobs; the
paper uses 16 temporaries + 26 home registers for the optimization study and
40 temporaries for the unrolling study.

Before register allocation the compiler works with an unbounded supply of
*virtual* registers.  Both kinds are represented by :class:`Reg`.
"""

from __future__ import annotations

from dataclasses import dataclass

# Fixed physical register roles.
ZERO_INDEX = 0
SP_INDEX = 1
RA_INDEX = 2
RV_INDEX = 3
FIRST_ARG_INDEX = 4
NUM_ARG_REGS = 6
SCRATCH0_INDEX = 10
SCRATCH1_INDEX = 11
FIRST_TEMP_INDEX = 12


@dataclass(frozen=True, slots=True)
class Reg:
    """A register operand: physical (``virtual=False``) or virtual."""

    index: int
    virtual: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name

    @property
    def name(self) -> str:
        """Assembly-style name, e.g. ``r5`` or ``v12``."""
        if self.virtual:
            return f"v{self.index}"
        special = {
            ZERO_INDEX: "zero",
            SP_INDEX: "sp",
            RA_INDEX: "ra",
            RV_INDEX: "rv",
        }
        if self.index in special:
            return special[self.index]
        return f"r{self.index}"


# Canonical physical register singletons.
ZERO = Reg(ZERO_INDEX)
SP = Reg(SP_INDEX)
RA = Reg(RA_INDEX)
RV = Reg(RV_INDEX)
SCRATCH0 = Reg(SCRATCH0_INDEX)
SCRATCH1 = Reg(SCRATCH1_INDEX)
ARG_REGS = tuple(Reg(FIRST_ARG_INDEX + i) for i in range(NUM_ARG_REGS))


def virtual(index: int) -> Reg:
    """Return the virtual register with the given index."""
    return Reg(index, virtual=True)


#: Flat-index offset for virtual registers, so simulators can index one
#: register array with both physical and (not yet allocated) virtual
#: registers without collisions.
VIRT_OFFSET = 1 << 16


def flat_index(reg: Reg) -> int:
    """Collision-free integer index for physical *and* virtual registers."""
    return reg.index + VIRT_OFFSET if reg.virtual else reg.index


@dataclass(frozen=True, slots=True)
class RegisterFileSpec:
    """Sizing of the allocatable register file.

    The paper treats the temporary/home split as an experimental knob:
    "Our interface lets us specify how the compiler should divide the
    registers between these two uses" (Section 3).
    """

    n_temp: int = 16
    n_home: int = 26

    def __post_init__(self) -> None:
        if self.n_temp < 3:
            raise ValueError("need at least 3 expression temporaries")
        if self.n_home < 0:
            raise ValueError("home register count must be non-negative")

    @property
    def temp_regs(self) -> tuple[Reg, ...]:
        """Physical registers used as expression temporaries."""
        return tuple(
            Reg(FIRST_TEMP_INDEX + i) for i in range(self.n_temp)
        )

    @property
    def home_regs(self) -> tuple[Reg, ...]:
        """Physical registers used as variable home locations."""
        base = FIRST_TEMP_INDEX + self.n_temp
        return tuple(Reg(base + i) for i in range(self.n_home))

    @property
    def total_registers(self) -> int:
        """Total size of the physical register file."""
        return FIRST_TEMP_INDEX + self.n_temp + self.n_home


class VirtualRegAllocator:
    """Hands out fresh virtual registers during code generation."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self) -> Reg:
        """Return a previously unused virtual register."""
        reg = Reg(self._next, virtual=True)
        self._next += 1
        return reg

    @property
    def count(self) -> int:
        """Number of virtual registers handed out so far."""
        return self._next

"""Parameterizable machine descriptions.

This mirrors the paper's Section 3 interface: "This interface allows us to
specify details about the pipeline, functional units, cache, and register
set."  A :class:`MachineConfig` specifies

* the superscalar issue width *n* (instructions per cycle),
* the superpipelining degree *m* (minor cycles per base cycle),
* an operation latency per instruction class, **in minor cycles**,
* optional functional units, each with an issue latency and a multiplicity
  (class conflicts arise when units are scarcer than the issue width), and
* an upper limit on instructions issued per cycle (= the issue width).

Time inside the timing simulator is counted in minor cycles; dividing by
``superpipeline_degree`` converts to base-machine cycles, which is the unit
all results are reported in.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from types import MappingProxyType
from typing import Iterable, Mapping

from ..errors import MachineConfigError
from ..isa.opcodes import InstrClass

#: Latency table with every class at one cycle (the base machine).
UNIT_LATENCIES: Mapping[InstrClass, int] = MappingProxyType(
    {klass: 1 for klass in InstrClass}
)


@dataclass(frozen=True, slots=True)
class FunctionalUnit:
    """A functional-unit type.

    ``classes``: instruction classes served by this unit type.
    ``issue_latency``: minor cycles between successive issues to one copy
    ("that unit is unable to issue another instruction until three cycles
    later", Section 3).
    ``multiplicity``: number of identical copies.
    """

    name: str
    classes: frozenset[InstrClass]
    issue_latency: int = 1
    multiplicity: int = 1

    def __post_init__(self) -> None:
        if self.issue_latency < 1:
            raise MachineConfigError(
                f"unit {self.name}: issue latency must be >= 1"
            )
        if self.multiplicity < 1:
            raise MachineConfigError(
                f"unit {self.name}: multiplicity must be >= 1"
            )


def unit(
    name: str,
    classes: Iterable[InstrClass],
    issue_latency: int = 1,
    multiplicity: int = 1,
) -> FunctionalUnit:
    """Convenience constructor for :class:`FunctionalUnit`."""
    return FunctionalUnit(
        name=name,
        classes=frozenset(classes),
        issue_latency=issue_latency,
        multiplicity=multiplicity,
    )


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine description.

    With an empty ``units`` tuple the machine is *ideal*: any mix of
    instruction classes can issue each cycle, limited only by the issue
    width and operand readiness (no class conflicts).
    """

    name: str
    issue_width: int = 1
    superpipeline_degree: int = 1
    latencies: Mapping[InstrClass, int] = field(
        default_factory=lambda: UNIT_LATENCIES
    )
    units: tuple[FunctionalUnit, ...] = ()
    #: Base cycles per machine cycle; > 1 models an *underpipelined*
    #: machine whose cycle time exceeds a simple-operation time (Fig 2-2).
    cycle_scale: int = 1
    #: "perfect" — the paper's assumption: perfect branch prediction /
    #: branch-slot filling, so control flow never stalls issue.
    #: "stall" — no prediction: nothing issues until a conditional
    #: branch resolves (its operation latency after issue); this is the
    #: control-flow inhibition of Riseman & Foster that the paper's
    #: model deliberately excludes.
    branch_policy: str = "perfect"

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise MachineConfigError("issue width must be >= 1")
        if self.superpipeline_degree < 1:
            raise MachineConfigError("superpipeline degree must be >= 1")
        if self.cycle_scale < 1:
            raise MachineConfigError("cycle scale must be >= 1")
        if self.branch_policy not in ("perfect", "stall"):
            raise MachineConfigError(
                f"unknown branch policy {self.branch_policy!r}"
            )
        missing = [k for k in InstrClass if k not in self.latencies]
        if missing:
            raise MachineConfigError(
                f"{self.name}: no latency for classes "
                f"{[k.value for k in missing]}"
            )
        for klass, lat in self.latencies.items():
            if lat < 1:
                raise MachineConfigError(
                    f"{self.name}: latency of {klass.value} must be >= 1"
                )
        if self.units:
            covered: set[InstrClass] = set()
            for u in self.units:
                covered |= u.classes
            uncovered = set(InstrClass) - covered
            if uncovered:
                raise MachineConfigError(
                    f"{self.name}: no functional unit covers "
                    f"{sorted(k.value for k in uncovered)}"
                )
        # Freeze the latency table so configs are safely shareable.
        object.__setattr__(
            self, "latencies", MappingProxyType(dict(self.latencies))
        )

    # The frozen latency table is a mappingproxy, which pickle refuses;
    # round-trip it through a plain dict so configs can cross process
    # boundaries (the execution engine ships them to pool workers).
    def __getstate__(self) -> dict:
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state["latencies"] = dict(self.latencies)
        return state

    def __setstate__(self, state: dict) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(
            self, "latencies", MappingProxyType(dict(state["latencies"]))
        )

    def fingerprint(self) -> tuple:
        """Canonical value covering *every* field that can change timing
        or scheduling behaviour.

        This is the machine component of the compile-cache key: the
        in-process memo in :mod:`repro.benchmarks.suite` and the
        engine's content-addressed on-disk cache both derive their keys
        from it, so the two can never disagree about what makes two
        configurations equivalent.
        """
        return (
            self.name,
            self.issue_width,
            self.superpipeline_degree,
            self.cycle_scale,
            self.branch_policy,
            tuple(sorted(
                (klass.value, lat) for klass, lat in self.latencies.items()
            )),
            tuple(
                (u.name, tuple(sorted(k.value for k in u.classes)),
                 u.issue_latency, u.multiplicity)
                for u in self.units
            ),
        )

    @property
    def is_ideal(self) -> bool:
        """True when the machine has no functional-unit (class) limits."""
        return not self.units

    def latency_of(self, klass: InstrClass) -> int:
        """Operation latency of a class in minor cycles."""
        return self.latencies[klass]

    def minor_to_base(self, minor_cycles: float) -> float:
        """Convert a minor-cycle count to base-machine cycles."""
        return minor_cycles * self.cycle_scale / self.superpipeline_degree

    def with_issue_width(self, width: int) -> "MachineConfig":
        """A copy of this config with a different issue width."""
        return MachineConfig(
            name=f"{self.name}/w{width}",
            issue_width=width,
            superpipeline_degree=self.superpipeline_degree,
            latencies=dict(self.latencies),
            units=self.units,
            cycle_scale=self.cycle_scale,
            branch_policy=self.branch_policy,
        )

    def with_branch_policy(self, policy: str) -> "MachineConfig":
        """A copy with a different branch policy ("perfect" / "stall")."""
        return MachineConfig(
            name=f"{self.name}/br-{policy}",
            issue_width=self.issue_width,
            superpipeline_degree=self.superpipeline_degree,
            latencies=dict(self.latencies),
            units=self.units,
            cycle_scale=self.cycle_scale,
            branch_policy=policy,
        )

    def with_unit_latencies(self) -> "MachineConfig":
        """A copy with every operation latency forced to one cycle.

        This reproduces the methodological mistake the paper criticises in
        Section 4.2 ("instruction issue methods have been compared for the
        CRAY-1 assuming all functional units have 1 cycle latency").
        """
        return MachineConfig(
            name=f"{self.name}/unit-lat",
            issue_width=self.issue_width,
            superpipeline_degree=self.superpipeline_degree,
            latencies={k: 1 for k in InstrClass},
            units=self.units,
            cycle_scale=self.cycle_scale,
            branch_policy=self.branch_policy,
        )

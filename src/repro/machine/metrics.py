"""The *average degree of superpipelining* metric (Section 2.7, Table 2-1).

"If we multiply the latency of each instruction class by the frequency we
observe for that instruction class when we perform our benchmark set, we get
the average degree of superpipelining."

The paper computes the metric with the static frequency mix reproduced in
:data:`PAPER_FREQUENCIES`; :func:`dynamic_frequencies` derives the same kind
of mix from a measured trace so both variants can be compared.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from ..isa.opcodes import InstrClass
from .config import MachineConfig

#: The instruction-class frequency mix of Table 2-1.  The paper's
#: aggregate "FP" row is attributed to the FP-add class (its latency is the
#: one the table uses for both machines).
PAPER_FREQUENCIES: Mapping[InstrClass, float] = MappingProxyType(
    {
        InstrClass.LOGICAL: 0.10,
        InstrClass.SHIFT: 0.10,
        InstrClass.ADDSUB: 0.20,
        InstrClass.LOAD: 0.20,
        InstrClass.STORE: 0.15,
        InstrClass.BRANCH: 0.15,
        InstrClass.FPADD: 0.10,
    }
)


def average_degree_of_superpipelining(
    latencies: Mapping[InstrClass, int],
    frequencies: Mapping[InstrClass, float] = PAPER_FREQUENCIES,
) -> float:
    """Frequency-weighted mean operation latency.

    Table 2-1 evaluates to 1.7 for the MultiTitan and 4.4 for the CRAY-1
    under :data:`PAPER_FREQUENCIES`.
    """
    return sum(
        freq * latencies[klass] for klass, freq in frequencies.items()
    )


def machine_degree(
    config: MachineConfig,
    frequencies: Mapping[InstrClass, float] = PAPER_FREQUENCIES,
) -> float:
    """Average degree of superpipelining of a machine config, in base cycles.

    Latencies stored in minor cycles are converted to base cycles first, so
    an (n, m) machine's metric reflects latency as seen by the programmer.
    """
    weighted = average_degree_of_superpipelining(config.latencies, frequencies)
    return config.minor_to_base(weighted)


def dynamic_frequencies(
    class_counts: Mapping[InstrClass, int],
) -> dict[InstrClass, float]:
    """Normalize per-class dynamic instruction counts into frequencies."""
    total = sum(class_counts.values())
    if total == 0:
        raise ValueError("empty class count histogram")
    return {klass: count / total for klass, count in class_counts.items()}


def required_parallelism(n: int, m: float) -> float:
    """Instruction-level parallelism needed to fully utilize an (n, m)
    superpipelined superscalar machine (Figure 4-3): simply ``n * m``.
    """
    if n < 1 or m < 1:
        raise ValueError("degrees must be >= 1")
    return n * m

"""Machine taxonomy and parameterizable machine descriptions (Section 2)."""

from .config import FunctionalUnit, MachineConfig, UNIT_LATENCIES, unit
from .metrics import (
    PAPER_FREQUENCIES,
    average_degree_of_superpipelining,
    dynamic_frequencies,
    machine_degree,
    required_parallelism,
)
from .presets import (
    CRAY1_LATENCIES,
    MULTITITAN_LATENCIES,
    base_machine,
    cray1,
    ideal_superscalar,
    multititan,
    paper_machines,
    preset_names,
    resolve,
    superpipelined,
    superpipelined_superscalar,
    superscalar_with_class_conflicts,
    underpipelined_half_issue,
    underpipelined_slow_cycle,
)

__all__ = [
    "CRAY1_LATENCIES",
    "FunctionalUnit",
    "MULTITITAN_LATENCIES",
    "MachineConfig",
    "PAPER_FREQUENCIES",
    "UNIT_LATENCIES",
    "average_degree_of_superpipelining",
    "base_machine",
    "cray1",
    "dynamic_frequencies",
    "ideal_superscalar",
    "machine_degree",
    "multititan",
    "paper_machines",
    "preset_names",
    "required_parallelism",
    "resolve",
    "superpipelined",
    "superpipelined_superscalar",
    "superscalar_with_class_conflicts",
    "underpipelined_half_issue",
    "underpipelined_slow_cycle",
    "unit",
]

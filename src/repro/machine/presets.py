"""Machine presets used throughout the paper.

The taxonomy of Section 2:

* the **base machine** — one instruction per cycle, every simple operation
  latency one cycle;
* **underpipelined** machines — cycle time longer than a simple operation,
  or issue rate below one per cycle (Figures 2-2, 2-3);
* **superscalar** machines of degree *n* — *n* instructions per cycle;
* **superpipelined** machines of degree *m* — one instruction per minor
  cycle, minor cycle time 1/m of the base cycle, simple-operation latency
  *m* minor cycles;
* **superpipelined superscalar** machines of degree (n, m);
* real slightly/heavily superpipelined machines: the **MultiTitan** and
  the **CRAY-1** with their published per-class latencies (Table 2-1).
"""

from __future__ import annotations

from ..isa.opcodes import InstrClass
from .config import MachineConfig, unit

_K = InstrClass


def base_machine() -> MachineConfig:
    """The paper's base machine: (n=1, m=1), all latencies one."""
    return MachineConfig(name="base")


def ideal_superscalar(n: int) -> MachineConfig:
    """Ideal superscalar of degree ``n``: no class conflicts (Fig 2-4)."""
    return MachineConfig(name=f"superscalar-{n}", issue_width=n)


def superpipelined(m: int) -> MachineConfig:
    """Superpipelined machine of degree ``m`` (Fig 2-6).

    Cycle time is 1/m of the base machine; every simple operation therefore
    takes m minor cycles given the same implementation technology.
    """
    return MachineConfig(
        name=f"superpipelined-{m}",
        issue_width=1,
        superpipeline_degree=m,
        latencies={k: m for k in InstrClass},
    )


def superpipelined_superscalar(n: int, m: int) -> MachineConfig:
    """Superpipelined superscalar of degree (n, m) (Fig 2-7)."""
    return MachineConfig(
        name=f"superpipelined-superscalar-{n}x{m}",
        issue_width=n,
        superpipeline_degree=m,
        latencies={k: m for k in InstrClass},
    )


def underpipelined_slow_cycle() -> MachineConfig:
    """Underpipelined machine whose cycle is two base cycles (Fig 2-2).

    It executes an operation and writes back the result in the same,
    doubly long pipestage; performance is half the base machine.
    """
    return MachineConfig(name="underpipelined-cycle2", cycle_scale=2)


def underpipelined_half_issue() -> MachineConfig:
    """Underpipelined machine issuing one instruction per two cycles
    (Fig 2-3), modelled with a single all-class functional unit whose
    issue latency is two cycles (like loads on the Berkeley RISC II).
    """
    return MachineConfig(
        name="underpipelined-issue2",
        units=(
            unit("all", list(InstrClass), issue_latency=2, multiplicity=1),
        ),
    )


#: MultiTitan per-class operation latencies (Table 2-1): ALU one cycle,
#: loads/stores/branches two cycles, floating point three cycles.
MULTITITAN_LATENCIES: dict[InstrClass, int] = {
    _K.LOGICAL: 1,
    _K.SHIFT: 1,
    _K.ADDSUB: 1,
    _K.INTMUL: 3,
    _K.INTDIV: 12,
    _K.LOAD: 2,
    _K.STORE: 2,
    _K.BRANCH: 2,
    _K.FPADD: 3,
    _K.FPMUL: 3,
    _K.FPDIV: 12,
    _K.FPCVT: 3,
    _K.MOVE: 1,
    _K.MISC: 1,
}

#: CRAY-1 per-class operation latencies (Table 2-1): logical 1, shift 2,
#: add/sub 3, load 11, store 1, branch 3, floating point 7.  Divide-class
#: latencies follow the CRAY-1 reciprocal-approximation unit.
CRAY1_LATENCIES: dict[InstrClass, int] = {
    _K.LOGICAL: 1,
    _K.SHIFT: 2,
    _K.ADDSUB: 3,
    _K.INTMUL: 7,
    _K.INTDIV: 25,
    _K.LOAD: 11,
    _K.STORE: 1,
    _K.BRANCH: 3,
    _K.FPADD: 7,
    _K.FPMUL: 7,
    _K.FPDIV: 25,
    _K.FPCVT: 7,
    _K.MOVE: 1,
    _K.MISC: 1,
}


def multititan(issue_width: int = 1) -> MachineConfig:
    """The MultiTitan: a slightly superpipelined machine (degree ~1.7)."""
    return MachineConfig(
        name=f"multititan-w{issue_width}",
        issue_width=issue_width,
        latencies=dict(MULTITITAN_LATENCIES),
    )


def cray1(issue_width: int = 1) -> MachineConfig:
    """The CRAY-1 scalar pipeline: heavily superpipelined (degree ~4.4)."""
    return MachineConfig(
        name=f"cray1-w{issue_width}",
        issue_width=issue_width,
        latencies=dict(CRAY1_LATENCIES),
    )


# --------------------------------------------------------------- name resolver
#: Parameter-free presets addressable by name.
_FIXED_PRESETS = {
    "base": base_machine,
    "multititan": multititan,
    "cray1": cray1,
    "underpipelined-cycle2": underpipelined_slow_cycle,
    "underpipelined-issue2": underpipelined_half_issue,
}

#: Parametric presets: name -> (factory, arity).  Degree arguments follow
#: a ``:`` (``superscalar:4``); two-argument presets take ``:NxM``.
_PARAMETRIC_PRESETS = {
    "superscalar": (ideal_superscalar, 1),
    "ideal-superscalar": (ideal_superscalar, 1),
    "superpipelined": (superpipelined, 1),
    "superpipelined-superscalar": (superpipelined_superscalar, 2),
}


def preset_names() -> list[str]:
    """Every spec form :func:`resolve` accepts, for help/error text."""
    return sorted(_FIXED_PRESETS) + [
        name + (":N" if arity == 1 else ":NxM")
        for name, (_, arity) in sorted(_PARAMETRIC_PRESETS.items())
        if name != "ideal-superscalar"
    ]


def resolve(spec: "MachineConfig | str") -> MachineConfig:
    """Resolve a machine spec — a :class:`MachineConfig` passes through,
    a string names a preset.

    String forms (case-insensitive; ``_`` and ``-`` interchangeable):

    * fixed presets: ``base``, ``multititan``, ``cray1``,
      ``underpipelined-cycle2``, ``underpipelined-issue2``;
    * parametric, degree after ``:`` or a trailing ``-``:
      ``superscalar:4`` (alias ``ideal_superscalar:4``),
      ``superpipelined:4``, ``superpipelined-superscalar:3x2``.

    This is the one place machine names are parsed; every CLI command
    and the :mod:`repro.api` facade funnel through it.
    """
    if isinstance(spec, MachineConfig):
        return spec
    text = spec.strip().lower().replace("_", "-")
    name, _, arg = text.partition(":")
    if not arg and "-" in name:
        # accept "superscalar-4" as a synonym of "superscalar:4"
        head, _, tail = name.rpartition("-")
        if tail.isdigit() and head in _PARAMETRIC_PRESETS:
            name, arg = head, tail
    if not arg and name in _FIXED_PRESETS:
        return _FIXED_PRESETS[name]()
    if name in _PARAMETRIC_PRESETS:
        factory, arity = _PARAMETRIC_PRESETS[name]
        parts = [p for p in arg.replace("x", ",").split(",") if p]
        if len(parts) == arity and all(p.isdigit() for p in parts):
            return factory(*(int(p) for p in parts))
        raise ValueError(
            f"machine spec {spec!r}: {name!r} needs "
            f"{'a degree' if arity == 1 else 'degrees N x M'} "
            f"(e.g. {name}:{'4' if arity == 1 else '3x2'})"
        )
    raise ValueError(
        f"unknown machine spec {spec!r}; known presets: "
        + ", ".join(preset_names())
    )


def paper_machines() -> list[MachineConfig]:
    """The seven standard machines the paper's results sweep over."""
    return [
        base_machine(),
        ideal_superscalar(2),
        ideal_superscalar(4),
        ideal_superscalar(8),
        superpipelined(4),
        multititan(),
        cray1(),
    ]


def superscalar_with_class_conflicts(n: int, n_mem_units: int = 1) -> MachineConfig:
    """Degree-``n`` superscalar where only some units were duplicated.

    Section 2.3.2: duplicating only register ports / decode but not all
    functional units creates *class conflicts*.  Here ALU-type units are
    fully duplicated but only ``n_mem_units`` load/store units exist.
    """
    return MachineConfig(
        name=f"superscalar-{n}-mem{n_mem_units}",
        issue_width=n,
        units=(
            unit(
                "alu",
                [
                    _K.LOGICAL, _K.SHIFT, _K.ADDSUB, _K.INTMUL, _K.INTDIV,
                    _K.MOVE, _K.MISC, _K.BRANCH,
                ],
                multiplicity=n,
            ),
            unit(
                "fpu",
                [_K.FPADD, _K.FPMUL, _K.FPDIV, _K.FPCVT],
                multiplicity=n,
            ),
            unit("mem", [_K.LOAD, _K.STORE], multiplicity=n_mem_units),
        ),
    )

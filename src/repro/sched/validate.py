"""Schedule validation shared by every scheduler backend.

:func:`check_schedule` is the contract each backend's output must meet
before it replaces a block's instruction order:

* **all ops placed** — the emitted order is a permutation of the
  block's instruction positions;
* **deps respected** — every dependence edge of the block's DAG goes
  forward in the order, and under the in-order issue model no
  instruction issues before its operands are ready;
* **resources never oversubscribed** — per cycle, at most
  ``issue_width`` instructions issue, and no functional-unit copy is
  asked to accept a new instruction before its issue latency expires.

:func:`issue_times` / :func:`evaluate_order` expose the underlying
in-order issue model (the same semantics as the list scheduler and
:meth:`repro.sim.replay.ReplayCore`'s block replay, restricted to one
block starting from an idle machine): the exact backend scores
candidate orders with it, and the gap tooling uses it to compare
backends block-locally.
"""

from __future__ import annotations

from ..errors import SchedulingError
from ..isa.instruction import Instruction
from ..machine.config import MachineConfig
from .dag import DepDAG


def _unit_table(config: MachineConfig) -> dict:
    """``klass -> (free-times list, issue latency)``, fresh state."""
    unit_of: dict = {}
    if config.units:
        for u in config.units:
            state = [0] * u.multiplicity
            for klass in u.classes:
                unit_of.setdefault(klass, (state, u.issue_latency))
    return unit_of


def issue_times(
    instrs: list[Instruction],
    order: list[int],
    dag: DepDAG,
    config: MachineConfig,
) -> list[int]:
    """Issue cycle of every instruction when ``order`` is issued
    in-order on an idle ``config`` (indexed by original position).

    Mirrors the replay core's issue rules: an instruction issues at the
    earliest cycle that satisfies its dependence-ready times, the
    ``issue_width`` slots of the current cycle, and a free functional
    unit copy of its class; issue cycles are non-decreasing along the
    order (in-order issue).
    """
    n = len(instrs)
    width = config.issue_width
    unit_of = _unit_table(config)
    ready = [0] * n
    times = [0] * n
    cur_cycle = 0
    cur_count = 0
    for idx in order:
        t = max(cur_cycle, ready[idx])
        unit = unit_of.get(instrs[idx].op.klass)
        if unit is None:
            if t == cur_cycle and cur_count >= width:
                t += 1
        else:
            free, issue_lat = unit
            while True:
                if t == cur_cycle and cur_count >= width:
                    t += 1
                k = min(range(len(free)), key=free.__getitem__)
                if free[k] > t:
                    t = free[k]
                    continue  # re-check the issue-width constraint
                free[k] = t + issue_lat
                break
        if t > cur_cycle:
            cur_cycle = t
            cur_count = 1
        else:
            cur_count += 1
        times[idx] = t
        for s, lat in dag.succs[idx].items():
            r = t + lat if lat > 0 else t
            if r > ready[s]:
                ready[s] = r
    return times


def evaluate_order(
    instrs: list[Instruction],
    order: list[int],
    dag: DepDAG,
    config: MachineConfig,
) -> int:
    """Completion horizon (last finish cycle) of ``order`` on an idle
    ``config`` — the block-local makespan backends compete on."""
    times = issue_times(instrs, order, dag, config)
    horizon = 0
    for i, t in enumerate(times):
        finish = t + config.latencies[instrs[i].op.klass]
        if finish > horizon:
            horizon = finish
    return horizon


def check_schedule(
    instrs: list[Instruction],
    order: list[int],
    dag: DepDAG,
    config: MachineConfig,
    backend: str = "?",
) -> None:
    """Raise :class:`SchedulingError` unless ``order`` is a complete,
    dependence-respecting, resource-feasible schedule of ``instrs``."""
    n = len(instrs)
    if sorted(order) != list(range(n)):
        raise SchedulingError(
            f"scheduler {backend!r} did not emit a permutation: "
            f"{len(order)}/{n} positions"
        )
    position = {node: k for k, node in enumerate(order)}
    for i in range(dag.n):
        for s in dag.succs[i]:
            if position[i] >= position[s]:
                raise SchedulingError(
                    f"scheduler {backend!r} violated a dependence: "
                    f"{i} must precede {s}"
                )
    times = issue_times(instrs, order, dag, config)
    # Independent re-check of the model's own invariants: operand
    # readiness, per-cycle slot usage, per-unit-copy occupancy.
    ready = [0] * n
    for idx in order:
        if times[idx] < ready[idx]:
            raise SchedulingError(
                f"scheduler {backend!r} issued {idx} at cycle "
                f"{times[idx]} before its operands are ready "
                f"(cycle {ready[idx]})"
            )
        for s, lat in dag.succs[idx].items():
            r = times[idx] + lat if lat > 0 else times[idx]
            if r > ready[s]:
                ready[s] = r
    per_cycle: dict[int, int] = {}
    for idx in order:
        per_cycle[times[idx]] = per_cycle.get(times[idx], 0) + 1
    for cycle, count in per_cycle.items():
        if count > config.issue_width:
            raise SchedulingError(
                f"scheduler {backend!r} oversubscribed cycle {cycle}: "
                f"{count} issues > width {config.issue_width}"
            )
    if config.units:
        # First-registered unit wins per class, exactly as in the issue
        # model's lookup table.
        unit_of_klass: dict = {}
        for u in config.units:
            for klass in u.classes:
                unit_of_klass.setdefault(klass, u)
        for u in config.units:
            issues = sorted(
                times[i] for i in range(n)
                if unit_of_klass.get(instrs[i].op.klass) is u
            )
            busy = [0] * u.multiplicity
            for t in issues:
                k = min(range(len(busy)), key=busy.__getitem__)
                if busy[k] > t:
                    raise SchedulingError(
                        f"scheduler {backend!r} oversubscribed unit "
                        f"{'/'.join(c.name for c in u.classes)} at "
                        f"cycle {t}"
                    )
                busy[k] = t + u.issue_latency

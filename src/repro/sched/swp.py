"""The ``"swp"`` backend: modulo scheduling for straight-line loop bodies.

Iterative modulo scheduling (Rau) adapted to the repro's constraint that
a scheduler may only *permute* a basic block: loop-body blocks (a
single-block natural loop — exactly the blocks the replay engine's
block plans replay back to back) are assigned modulo-reservation slots
at the smallest feasible initiation interval II ≥ MII, then emitted in
slot order.  Spreading each iteration's unit and issue-slot pressure
evenly over the II lets consecutive iterations overlap in the in-order
pipeline — the classic software-pipelining effect — where the list
scheduler's greedy front-loading piles conflicts at the loop head.
Non-loop blocks fall back to the ``"list"`` backend unchanged, and a
loop body keeps its list schedule whenever that one is no worse under
the shared issue model (:mod:`repro.sched.validate`).
"""

from __future__ import annotations

from ..isa.program import BasicBlock, Function, natural_loops
from ..isa.registers import Reg
from ..machine.config import MachineConfig
from ..opt.options import AliasLevel
from .dag import DepDAG, build_dag
from .listsched import _list_schedule, _priorities
from .registry import SchedulerBackend, register
from .validate import check_schedule, evaluate_order


def _res_mii(block: BasicBlock, config: MachineConfig) -> int:
    """Resource-constrained minimum initiation interval.

    The issue width bounds how many instructions fit per cycle; each
    functional unit bounds its classes by ``uses * issue_latency``
    spread over ``multiplicity`` copies.
    """
    n = len(block.instrs)
    mii = max(1, -(-n // config.issue_width))
    if config.units:
        unit_of: dict = {}
        for u in config.units:
            for klass in u.classes:
                unit_of.setdefault(klass, u)
        uses: dict[int, int] = {}
        for ins in block.instrs:
            u = unit_of.get(ins.op.klass)
            if u is not None:
                uses[id(u)] = uses.get(id(u), 0) + 1
        by_id = {id(u): u for u in config.units}
        for uid, count in uses.items():
            u = by_id[uid]
            need = -(-(count * u.issue_latency) // u.multiplicity)
            if need > mii:
                mii = need
    return mii


def _modulo_order(
    block: BasicBlock, dag: DepDAG, config: MachineConfig
) -> list[int] | None:
    """Slot-assign the block at the smallest feasible II; returns the
    emission order (by slot, then original position), or ``None`` when
    no II up to the unconstrained makespan works."""
    n = dag.n
    prio = _priorities(block, dag, config)
    # Place nodes in dependence-topological order, critical path first
    # among ready peers — the classic IMS priority.
    indeg = [len(p) for p in dag.preds]
    sched_order: list[int] = []
    ready = [i for i in range(n) if indeg[i] == 0]
    while ready:
        ready.sort(key=lambda i: (-prio[i], i))
        i = ready.pop(0)
        sched_order.append(i)
        for s in dag.succs[i]:
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.append(s)
    if len(sched_order) != n:
        return None

    unit_of_klass: dict = {}
    if config.units:
        for u in config.units:
            for klass in u.classes:
                unit_of_klass.setdefault(klass, u)

    ii = _res_mii(block, config)
    # A makespan-length II degenerates to plain list scheduling; don't
    # search past it.
    ii_cap = max(ii, n * 4)
    while ii <= ii_cap:
        slot = [-1] * n
        issue_used = [0] * ii          # issue slots taken, per modulo slot
        unit_used: dict[tuple, int] = {}  # (unit id, modulo slot) -> uses
        feasible = True
        for i in sched_order:
            earliest = 0
            for p, lat in dag.preds[i].items():
                e = slot[p] + (lat if lat > 0 else 0)
                if e > earliest:
                    earliest = e
            placed = False
            for t in range(earliest, earliest + ii):
                m = t % ii
                if issue_used[m] >= config.issue_width:
                    continue
                u = unit_of_klass.get(block.instrs[i].op.klass)
                if u is not None:
                    budget = u.multiplicity * max(1, u.issue_latency)
                    used = unit_used.get((id(u), m), 0)
                    if used * max(1, u.issue_latency) >= budget:
                        continue
                    unit_used[(id(u), m)] = used + 1
                issue_used[m] += 1
                slot[i] = t
                placed = True
                break
            if not placed:
                feasible = False
                break
        if feasible:
            return sorted(range(n), key=lambda i: (slot[i], i))
        ii += 1
    return None


class SwpScheduler(SchedulerBackend):
    """Modulo scheduling for loop bodies; list scheduling elsewhere."""

    name = "swp"
    description = ("software pipelining (modulo scheduling) for "
                   "straight-line loop bodies; list elsewhere")

    def __init__(self) -> None:
        self._loop_blocks: set[str] = set()

    def prepare_function(self, fn: Function) -> None:
        # A straight-line loop body is a single-block natural loop:
        # header == tail, the backedge its own terminator — the same
        # shape the replay engine's block plans replay back to back.
        self._loop_blocks = {
            header for header, body in natural_loops(fn)
            if len(body) == 1
        }

    def schedule_block(
        self,
        block: BasicBlock,
        config: MachineConfig,
        alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
        home_bindings: dict[str, Reg] | None = None,
        heuristic: str = "critical-path",
    ) -> None:
        dag = build_dag(block, config, alias_level, home_bindings)
        list_order = _list_schedule(block, dag, config, heuristic)
        order = list_order
        if block.label in self._loop_blocks:
            pipelined = _modulo_order(block, dag, config)
            if pipelined is not None:
                # Adopt the modulo order whenever it is no worse
                # block-locally: its payoff (evenly spread resource
                # pressure) shows up across back-to-back iterations,
                # which the one-block model cannot see.
                a = evaluate_order(block.instrs, pipelined, dag, config)
                b = evaluate_order(block.instrs, list_order, dag, config)
                if a <= b:
                    order = pipelined
        check_schedule(block.instrs, order, dag, config,
                       backend=self.name)
        block.instrs = [block.instrs[i] for i in order]


register(SwpScheduler())

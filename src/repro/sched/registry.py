"""The scheduler-backend registry: one home for every scheduling policy.

A *backend* turns each basic block of a function into a new instruction
order for a target :class:`~repro.machine.config.MachineConfig`.  The
compile driver never names a concrete scheduler; it looks the configured
backend up here by name (``CompilerOptions.scheduler``), so schedulers
are pluggable:

* ``"list"``  — the paper's greedy critical-path list scheduler
  (:mod:`repro.sched.listsched`), the default;
* ``"swp"``   — modulo scheduling for straight-line loop bodies,
  list scheduling elsewhere (:mod:`repro.sched.swp`);
* ``"exact"`` — bounded branch-and-bound search for the provably best
  in-order issue sequence per block (:mod:`repro.sched.exact`).

Writing a backend means subclassing :class:`SchedulerBackend`,
implementing :meth:`~SchedulerBackend.schedule_block`, and calling
:func:`register` with an instance — see ``docs/schedulers.md``.  Every
backend's output is checked by :mod:`repro.sched.validate` (dependences
respected, resources never oversubscribed, every op placed exactly
once), and backend choice participates in
:meth:`CompilerOptions.fingerprint`, so the benchmark memo, the on-disk
trace cache, the run ledger, and ``repro diff`` all distinguish
schedules produced by different backends.
"""

from __future__ import annotations

import abc
import time

from ..errors import SchedulingError
from ..isa.program import BasicBlock, Function
from ..isa.registers import Reg
from ..machine.config import MachineConfig
from ..obs.profile import SchedStats
from ..opt.options import AliasLevel

#: Heuristic spellings every backend accepts (the list scheduler's
#: tie-breaking priority; other backends apply it to their fallbacks).
KNOWN_HEURISTICS = ("critical-path", "source-order")


class SchedulerBackend(abc.ABC):
    """One scheduling policy, registered under a unique ``name``.

    Subclasses implement :meth:`schedule_block`; the default
    :meth:`schedule_function` drives it over every block of a function
    (skipping trivial blocks, accumulating :class:`SchedStats`), which
    is the entry point the compile driver calls.  Backends needing
    function-level context (e.g. loop structure) override
    :meth:`schedule_function` or :meth:`prepare_function`.
    """

    #: unique registry key (``CompilerOptions.scheduler`` value)
    name: str = ""
    #: one-line human description (``api.schedulers()``, CLI errors)
    description: str = ""

    def prepare_function(self, fn: Function) -> None:
        """Hook: called once per function before its blocks are
        scheduled (loop analysis, shared tables...).  Default: no-op."""

    @abc.abstractmethod
    def schedule_block(
        self,
        block: BasicBlock,
        config: MachineConfig,
        alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
        home_bindings: dict[str, Reg] | None = None,
        heuristic: str = "critical-path",
    ) -> None:
        """Reorder ``block.instrs`` in place for ``config``.

        The emitted order must be a permutation of the original
        instructions that respects the block's dependence DAG — run
        :func:`repro.sched.validate.check_schedule` before committing a
        new order (the bundled backends all do).
        """

    def schedule_function(
        self,
        fn: Function,
        config: MachineConfig,
        alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
        heuristic: str = "critical-path",
        stats: SchedStats | None = None,
    ) -> None:
        """Schedule every basic block of ``fn`` in place."""
        if heuristic not in KNOWN_HEURISTICS:
            raise SchedulingError(
                f"unknown scheduling heuristic {heuristic!r}"
            )
        self.prepare_function(fn)
        if stats is None:
            for block in fn.blocks:
                if len(block.instrs) > 2:
                    self.schedule_block(
                        block, config, alias_level, fn.home_bindings,
                        heuristic,
                    )
            return
        for block in fn.blocks:
            stats.blocks_seen += 1
            if len(block.instrs) > 2:
                start = time.perf_counter()
                self.schedule_block(
                    block, config, alias_level, fn.home_bindings, heuristic
                )
                stats.seconds += time.perf_counter() - start
                stats.blocks_scheduled += 1
                stats.instructions += len(block.instrs)


_REGISTRY: dict[str, SchedulerBackend] = {}

#: Name used when ``CompilerOptions`` doesn't pin a backend explicitly.
_DEFAULT_NAME = "list"


def register(backend: SchedulerBackend) -> SchedulerBackend:
    """Add a backend to the registry; its ``name`` must be unique."""
    if not backend.name:
        raise ValueError("scheduler backend needs a non-empty name")
    if backend.name in _REGISTRY:
        raise ValueError(
            f"duplicate scheduler backend {backend.name!r}"
        )
    _REGISTRY[backend.name] = backend
    return backend


def _ensure_loaded() -> None:
    """Import the bundled backend modules (they self-register)."""
    from . import exact, listsched, swp  # noqa: F401


def names() -> list[str]:
    """Registered backend names, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get(name: str) -> SchedulerBackend:
    """Look a backend up by name.

    Raises :class:`~repro.errors.SchedulingError` listing the registered
    backends when ``name`` is unknown — the CLI surfaces this message
    verbatim.
    """
    _ensure_loaded()
    backend = _REGISTRY.get(name)
    if backend is None:
        raise SchedulingError(
            f"unknown scheduler backend {name!r} "
            f"(registered: {', '.join(sorted(_REGISTRY))})"
        )
    return backend


def descriptions() -> dict[str, str]:
    """``{name: one-line description}`` for every registered backend."""
    _ensure_loaded()
    return {name: _REGISTRY[name].description
            for name in sorted(_REGISTRY)}


def get_default() -> str:
    """The backend name new :class:`CompilerOptions` default to."""
    return _DEFAULT_NAME


def set_default(name: str) -> str:
    """Set the process-wide default backend; returns the previous name.

    Used by the CLI's ``--scheduler`` flag so every option set built
    downstream (per-benchmark defaults, exhibits, reports) picks the
    selected backend up.  The name is validated against the registry.
    """
    global _DEFAULT_NAME
    get(name)  # validates; raises SchedulingError with the known names
    previous = _DEFAULT_NAME
    _DEFAULT_NAME = name
    return previous

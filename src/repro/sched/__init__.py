"""Pipeline instruction scheduling (dependence DAG + list scheduling)."""

from .dag import DepDAG, build_dag
from .list_scheduler import schedule_block, schedule_function

__all__ = ["DepDAG", "build_dag", "schedule_block", "schedule_function"]

"""Pipeline instruction scheduling: dependence DAG + pluggable backends.

The subsystem is organized around a backend registry
(:mod:`repro.sched.registry`): ``"list"`` (the paper's greedy
critical-path heuristic, the default), ``"swp"`` (modulo scheduling for
straight-line loop bodies), and ``"exact"`` (budgeted branch-and-bound
optimal block schedules).  Select a backend via
``CompilerOptions(scheduler=...)``, ``api.compile(..., scheduler=...)``
or the CLI's ``--scheduler``; every backend's output is checked by
:mod:`repro.sched.validate`.  ``schedule_function``/``schedule_block``
remain the historical list-scheduler entry points.
"""

from . import registry, validate
from .dag import DepDAG, build_dag
from .listsched import schedule_block, schedule_function
from .registry import SchedulerBackend

__all__ = [
    "DepDAG",
    "SchedulerBackend",
    "build_dag",
    "registry",
    "schedule_block",
    "schedule_function",
    "validate",
]

"""The ``"exact"`` scheduler backend: optimal block schedules by search.

Branch-and-bound over in-order issue sequences of one basic block's
dependence DAG — pure stdlib, in the spirit of SMT/CP optimal schedulers
(Roorda) and search-based superoptimization (Minotaur), scaled to the
paper's machine model.  The machine issues in order, so the only
artifact the compiler controls is the instruction *sequence*; the search
therefore enumerates topological orders of the DAG, scoring each with
the shared in-order issue model (:func:`repro.sched.validate`), and
keeps the order with the smallest completion horizon.  The list
scheduler's order seeds the incumbent, so the result is never worse
than the ``"list"`` backend on any block — this is what makes the
``repro gap`` report (cycles(list) − cycles(exact)) a true
heuristic-vs-optimal gap wherever the search completes.

Pruning: a critical-path + issue-bandwidth lower bound per partial
sequence, plus Pareto dominance over identical scheduled-sets (a state
whose clock, slot usage, unit occupancy, and dependence frontier are
all at least as late as a previously seen state cannot beat it).

The search is budgeted per block.  ``max_nodes`` (deterministic — the
same input always explores the same tree) is the primary limit;
``max_seconds`` is off by default precisely because a wall-clock cutoff
would make schedules — and therefore trace-cache contents keyed on
``CompilerOptions.fingerprint()`` — machine-dependent.  On exhaustion a
typed :class:`~repro.errors.ScheduleBudgetError` is raised internally
and the backend falls back to the best order found so far (at worst the
list order), so ``"exact"`` is safe inside the engine's resilience
ladder.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from ..errors import ScheduleBudgetError
from ..isa.program import BasicBlock
from ..isa.registers import Reg
from ..machine.config import MachineConfig
from ..opt.options import AliasLevel
from .dag import DepDAG, build_dag
from .listsched import _list_schedule, _priorities
from .registry import SchedulerBackend, register
from .validate import check_schedule, evaluate_order


@dataclass(frozen=True, slots=True)
class ScheduleBudget:
    """Per-block search limits for the exact backend.

    ``max_nodes`` bounds branch-and-bound expansions (deterministic);
    ``max_block`` skips the search outright for blocks with more
    instructions (straight to the list fallback); ``max_seconds`` is an
    optional wall-clock cutoff — leave it ``None`` for reproducible
    schedules (see the module docstring).
    """

    max_nodes: int = 20_000
    max_block: int = 64
    max_seconds: float | None = None


DEFAULT_BUDGET = ScheduleBudget()


class _Search:
    """One branch-and-bound run over a block's dependence DAG."""

    def __init__(self, block: BasicBlock, dag: DepDAG,
                 config: MachineConfig, budget: ScheduleBudget) -> None:
        self.block = block
        self.dag = dag
        self.config = config
        self.budget = budget
        self.n = dag.n
        self.nodes = 0
        self.deadline = (
            _time.perf_counter() + budget.max_seconds
            if budget.max_seconds is not None else None
        )
        instrs = block.instrs
        self.latency = [config.latencies[i.op.klass] for i in instrs]
        # Candidate ordering reuses the list scheduler's heuristic
        # height so good orders are tried first...
        self.rank = _priorities(block, dag, config)
        # ...but the *bound* needs an admissible tail: the height
        # heuristic pads zero-latency edges to one cycle and counts a
        # node's latency on top of its outgoing edge latency, so using
        # it as a lower bound over-prunes (misses true optima).
        # tail[i] = provable minimum from issuing i to block completion:
        # i's own result latency, or any successor chain at exact edge
        # delays (0-latency edges may issue the same cycle).
        self.tail = [0] * self.n
        for i in reversed(dag.topological_order()):
            best = self.latency[i]
            for s, edge_lat in dag.succs[i].items():
                cand = (edge_lat if edge_lat > 0 else 0) + self.tail[s]
                if cand > best:
                    best = cand
            self.tail[i] = best
        # klass -> index into the per-state unit-occupancy vector.
        self.unit_slot: dict = {}
        self.unit_shapes: list[tuple[int, int]] = []  # (multiplicity, lat)
        if config.units:
            seen: dict[int, int] = {}
            for u in config.units:
                idx = seen.setdefault(id(u), len(self.unit_shapes))
                if idx == len(self.unit_shapes):
                    self.unit_shapes.append((u.multiplicity,
                                             u.issue_latency))
                for klass in u.classes:
                    self.unit_slot.setdefault(klass, idx)
        self.klass_unit = [
            self.unit_slot.get(i.op.klass) for i in instrs
        ]
        self.best_order: list[int] | None = None
        self.best_score: int | None = None
        # Pareto states per scheduled-set: list of comparable vectors.
        # Both caps bound memory, not correctness — a state that can't
        # be stored is explored rather than wrongly pruned.
        self.seen: dict[int, list[tuple]] = {}
        self.seen_states = 0
        self.max_bucket = 12
        self.max_states = 50_000

    # -- state vector: everything the remaining schedule depends on
    def _state_vec(self, cur_cycle, cur_count, units, ready, mask):
        frontier = tuple(
            ready[i] for i in range(self.n) if not mask >> i & 1
        )
        flat = tuple(t for copies in units for t in copies)
        return (cur_cycle, cur_count, flat, frontier)

    @staticmethod
    def _dominates(a: tuple, b: tuple) -> bool:
        """Is state ``a`` at least as good as ``b`` component-wise?

        Every component is a "not later than" quantity except
        ``cur_count`` (slots already used in the current cycle), which
        only matters when the cycles are equal.
        """
        if a[0] > b[0]:
            return False
        if a[0] == b[0] and a[1] > b[1]:
            return False
        if any(x > y for x, y in zip(a[2], b[2])):
            return False
        if any(x > y for x, y in zip(a[3], b[3])):
            return False
        return True

    def _charge_node(self) -> None:
        self.nodes += 1
        if self.nodes > self.budget.max_nodes:
            raise ScheduleBudgetError(
                self.block.label, self.nodes, "nodes")
        if self.deadline is not None and not self.nodes % 256 \
                and _time.perf_counter() > self.deadline:
            raise ScheduleBudgetError(
                self.block.label, self.nodes, "seconds")

    def run(self, incumbent: list[int]) -> list[int]:
        """Search; returns the best complete order found.

        ``incumbent`` (the list order) seeds the bound; the search only
        replaces it with strictly better orders, so ties keep the
        heuristic's choice.
        """
        self.best_order = list(incumbent)
        self.best_score = evaluate_order(
            self.block.instrs, incumbent, self.dag, self.config)
        preds, succs = self.dag.preds, self.dag.succs
        n = self.n
        indeg = [len(p) for p in preds]
        ready_time = [0] * n
        units = [[0] * mult for mult, _lat in self.unit_shapes]
        order: list[int] = []

        def dfs(mask: int, cur_cycle: int, cur_count: int,
                horizon: int) -> None:
            self._charge_node()
            if len(order) == n:
                if horizon < self.best_score:
                    self.best_score = horizon
                    self.best_order = list(order)
                return
            # Lower bound: the dependence frontier's critical paths and
            # the remaining issue bandwidth can't beat the incumbent.
            remaining = n - len(order)
            lb = cur_cycle + (remaining - 1) // self.config.issue_width
            if horizon > lb:
                lb = horizon
            for i in range(n):
                if mask >> i & 1:
                    continue
                cand = ready_time[i] + self.tail[i]
                if cand > lb:
                    lb = cand
            if lb >= self.best_score:
                return
            vec = self._state_vec(cur_cycle, cur_count, units,
                                  ready_time, mask)
            bucket = self.seen.setdefault(mask, [])
            for prev in bucket:
                if self._dominates(prev, vec):
                    return
            if (len(bucket) < self.max_bucket
                    and self.seen_states < self.max_states):
                survivors = [p for p in bucket
                             if not self._dominates(vec, p)]
                self.seen_states -= len(bucket) - len(survivors) - 1
                survivors.append(vec)
                bucket[:] = survivors

            # Expand ready nodes, best heuristic rank first so good
            # incumbents tighten the bound early.
            cands = sorted(
                (i for i in range(n)
                 if not mask >> i & 1 and indeg[i] == 0),
                key=lambda i: (-self.rank[i], i),
            )
            for i in cands:
                t = ready_time[i]
                if t < cur_cycle:
                    t = cur_cycle
                u = self.klass_unit[i]
                saved_unit = None
                if u is None:
                    if t == cur_cycle and cur_count >= \
                            self.config.issue_width:
                        t += 1
                else:
                    free = units[u]
                    issue_lat = self.unit_shapes[u][1]
                    while True:
                        if t == cur_cycle and cur_count >= \
                                self.config.issue_width:
                            t += 1
                        k = min(range(len(free)),
                                key=free.__getitem__)
                        if free[k] > t:
                            t = free[k]
                            continue
                        saved_unit = (u, k, free[k])
                        free[k] = t + issue_lat
                        break
                nxt_cycle, nxt_count = (
                    (t, cur_count + 1) if t == cur_cycle else (t, 1))
                finish = t + self.latency[i]
                saved_ready: list[tuple[int, int]] = []
                for s, lat in succs[i].items():
                    r = t + lat if lat > 0 else t
                    if r > ready_time[s]:
                        saved_ready.append((s, ready_time[s]))
                        ready_time[s] = r
                    indeg[s] -= 1
                order.append(i)
                dfs(mask | (1 << i), nxt_cycle, nxt_count,
                    max(horizon, finish))
                order.pop()
                for s, _lat in succs[i].items():
                    indeg[s] += 1
                for s, r in saved_ready:
                    ready_time[s] = r
                if saved_unit is not None:
                    uu, k, old = saved_unit
                    units[uu][k] = old

        dfs(0, 0, 0, 0)
        assert self.best_order is not None
        return self.best_order


class ExactScheduler(SchedulerBackend):
    """Provably minimal block-local schedules, within a search budget."""

    name = "exact"
    description = ("bounded branch-and-bound optimal block scheduling "
                   "(never worse than \"list\")")

    def __init__(self, budget: ScheduleBudget | None = None) -> None:
        self.budget = budget or DEFAULT_BUDGET
        #: blocks whose search tripped the budget (fell back), since
        #: the backend was constructed — cheap observability for tests
        #: and the gap tooling.
        self.fallbacks = 0

    def schedule_block(
        self,
        block: BasicBlock,
        config: MachineConfig,
        alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
        home_bindings: dict[str, Reg] | None = None,
        heuristic: str = "critical-path",
    ) -> None:
        dag = build_dag(block, config, alias_level, home_bindings)
        incumbent = _list_schedule(block, dag, config, heuristic)
        if dag.n > self.budget.max_block:
            self.fallbacks += 1
            order = incumbent
        else:
            search = _Search(block, dag, config, self.budget)
            try:
                order = search.run(incumbent)
            except ScheduleBudgetError:
                self.fallbacks += 1
                order = search.best_order or incumbent
        check_schedule(block.instrs, order, dag, config,
                       backend=self.name)
        block.instrs = [block.instrs[i] for i in order]


register(ExactScheduler())

"""Latency-aware list scheduling of basic blocks — the ``"list"`` backend.

"The compile-time pipeline instruction scheduler knows this and schedules
the instructions in a basic block so that the resulting stall time will be
minimized" (Section 3).  The scheduler targets a specific
:class:`~repro.machine.MachineConfig`: it simulates in-order issue —
operand latencies, issue width, functional-unit issue latencies and
multiplicities — and greedily picks, cycle by cycle, the ready instruction
with the longest critical path to the end of the block.

This is the default scheduler backend (see :mod:`repro.sched.registry`);
its output is pinned bit-identical against golden schedules in
``tests/golden/schedules.json``.  The historical module-level entry
points (:func:`schedule_function` / :func:`schedule_block`) remain the
implementation and keep working via the :mod:`repro.sched.list_scheduler`
shim.
"""

from __future__ import annotations

import time

from ..errors import SchedulingError
from ..isa.program import BasicBlock, Function
from ..isa.registers import Reg
from ..machine.config import MachineConfig
from ..obs.profile import SchedStats
from ..opt.options import AliasLevel
from .dag import DepDAG, build_dag
from .registry import SchedulerBackend, register
from .validate import check_schedule


def schedule_function(
    fn: Function,
    config: MachineConfig,
    alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
    heuristic: str = "critical-path",
    stats: SchedStats | None = None,
) -> None:
    """Schedule every basic block of ``fn`` in place.

    ``stats`` (optional) accumulates per-block scheduler activity —
    blocks visited vs. actually scheduled, instructions touched, wall
    time — for the compile profile; ``None`` measures nothing.
    """
    if stats is None:
        for block in fn.blocks:
            if len(block.instrs) > 2:
                schedule_block(
                    block, config, alias_level, fn.home_bindings, heuristic
                )
        return
    for block in fn.blocks:
        stats.blocks_seen += 1
        if len(block.instrs) > 2:
            start = time.perf_counter()
            schedule_block(
                block, config, alias_level, fn.home_bindings, heuristic
            )
            stats.seconds += time.perf_counter() - start
            stats.blocks_scheduled += 1
            stats.instructions += len(block.instrs)


def schedule_block(
    block: BasicBlock,
    config: MachineConfig,
    alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
    home_bindings: dict[str, Reg] | None = None,
    heuristic: str = "critical-path",
) -> None:
    """Reorder ``block.instrs`` to minimize stalls on ``config``.

    ``heuristic`` selects the tie-breaking priority among ready
    instructions: ``"critical-path"`` (latency-weighted height, the
    default) or ``"source-order"`` (keep the original order whenever
    dependences allow; isolates how much the priority function itself
    contributes).
    """
    if heuristic not in ("critical-path", "source-order"):
        raise SchedulingError(f"unknown scheduling heuristic {heuristic!r}")
    dag = build_dag(block, config, alias_level, home_bindings)
    order = _list_schedule(block, dag, config, heuristic)
    _verify_topological(dag, order)
    block.instrs = [block.instrs[i] for i in order]


def _priorities(block: BasicBlock, dag: DepDAG, config: MachineConfig) -> list[int]:
    """Critical-path height of each node (latency-weighted)."""
    topo = dag.topological_order()
    prio = [0] * dag.n
    for i in reversed(topo):
        lat = config.latencies[block.instrs[i].op.klass]
        best = 0
        for s, edge_lat in dag.succs[i].items():
            cand = max(edge_lat, 1) + prio[s]
            if cand > best:
                best = cand
        prio[i] = best + lat
    return prio


def _list_schedule(
    block: BasicBlock,
    dag: DepDAG,
    config: MachineConfig,
    heuristic: str = "critical-path",
) -> list[int]:
    n = dag.n
    if heuristic == "source-order":
        prio = [n - i for i in range(n)]
    else:
        prio = _priorities(block, dag, config)
    indeg = [len(p) for p in dag.preds]
    earliest = [0] * n
    ready = {i for i in range(n) if indeg[i] == 0}

    unit_free: dict = {}
    unit_of: dict = {}
    if config.units:
        for u in config.units:
            state = [0] * u.multiplicity
            for klass in u.classes:
                unit_of.setdefault(klass, (state, u.issue_latency))

    order: list[int] = []
    time = 0
    slots = config.issue_width

    while ready:
        candidates = sorted(
            (i for i in ready if earliest[i] <= time),
            key=lambda i: (-prio[i], i),
        )
        issued = None
        for i in candidates:
            if slots <= 0:
                break
            klass = block.instrs[i].op.klass
            unit = unit_of.get(klass)
            if unit is not None:
                free, issue_lat = unit
                k = min(range(len(free)), key=free.__getitem__)
                if free[k] > time:
                    continue  # class conflict this cycle; try another instr
                free[k] = time + issue_lat
            issued = i
            break
        if issued is None:
            # advance to the next interesting cycle
            future = [earliest[i] for i in ready if earliest[i] > time]
            time = min(future) if future and slots > 0 else time + 1
            slots = config.issue_width
            continue
        ready.discard(issued)
        slots -= 1
        order.append(issued)
        lat = config.latencies[block.instrs[issued].op.klass]
        for s, edge_lat in dag.succs[issued].items():
            ready_time = time + (edge_lat if edge_lat > 0 else 0)
            if edge_lat == 0:
                ready_time = time  # may issue in the same cycle
            if ready_time > earliest[s]:
                earliest[s] = ready_time
            indeg[s] -= 1
            if indeg[s] == 0:
                ready.add(s)
        del lat

    if len(order) != n:
        raise SchedulingError(
            f"scheduler dropped instructions ({len(order)}/{n})"
        )
    return order


def _verify_topological(dag: DepDAG, order: list[int]) -> None:
    """Assert the emitted order respects every dependence edge."""
    position = {node: k for k, node in enumerate(order)}
    for i in range(dag.n):
        for s in dag.succs[i]:
            if position[i] >= position[s]:
                raise SchedulingError(
                    f"dependence violated: {i} must precede {s}"
                )


class ListScheduler(SchedulerBackend):
    """Registry adapter over the module-level list scheduler."""

    name = "list"
    description = ("greedy critical-path list scheduling "
                   "(the paper's heuristic; default)")

    def schedule_block(
        self,
        block: BasicBlock,
        config: MachineConfig,
        alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
        home_bindings: dict[str, Reg] | None = None,
        heuristic: str = "critical-path",
    ) -> None:
        if heuristic not in ("critical-path", "source-order"):
            raise SchedulingError(
                f"unknown scheduling heuristic {heuristic!r}"
            )
        dag = build_dag(block, config, alias_level, home_bindings)
        order = _list_schedule(block, dag, config, heuristic)
        check_schedule(block.instrs, order, dag, config,
                       backend=self.name)
        block.instrs = [block.instrs[i] for i in order]


register(ListScheduler())

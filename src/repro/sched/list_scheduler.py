"""Deprecated import location for the list scheduler.

The implementation moved to :mod:`repro.sched.listsched` when the
scheduler grew a backend registry (:mod:`repro.sched.registry`); prefer
``repro.sched.registry.get("list")`` — or the ``scheduler=`` keyword of
:mod:`repro.api` — for backend selection.  This shim keeps historical
imports (``from repro.sched.list_scheduler import schedule_block``)
working unchanged.
"""

from __future__ import annotations

import warnings

from .listsched import (  # noqa: F401
    ListScheduler,
    _list_schedule,
    _priorities,
    _verify_topological,
    schedule_block,
    schedule_function,
)

warnings.warn(
    "repro.sched.list_scheduler is deprecated; import from "
    "repro.sched.listsched or use repro.sched.registry",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["schedule_block", "schedule_function"]

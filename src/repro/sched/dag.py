"""Dependence DAG construction for basic-block scheduling.

Edges encode every ordering the scheduled code must preserve:

* register true/anti/output dependences (RAW with the producer's operation
  latency as the edge weight; WAR and WAW as pure ordering edges — the
  paper's "artificial dependencies" from temporary-register reuse);
* memory dependences filtered through the alias oracle
  (:mod:`repro.opt.alias`), including the affine same-object
  disambiguation of careful unrolling with its no-redefinition side
  condition;
* calls as full scheduling barriers;
* the block terminator, which everything precedes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..isa.instruction import Instruction, MemRef
from ..isa.opcodes import Opcode
from ..isa.program import BasicBlock
from ..isa.registers import Reg
from ..machine.config import MachineConfig
from ..opt.alias import may_conflict
from ..opt.options import AliasLevel


@dataclass(slots=True)
class DepDAG:
    """Dependence DAG over one basic block's instructions."""

    n: int
    preds: list[dict[int, int]] = field(default_factory=list)  # j -> latency
    succs: list[dict[int, int]] = field(default_factory=list)

    def add_edge(self, src: int, dst: int, latency: int) -> None:
        """Add (or strengthen) an edge ``src`` before ``dst``."""
        if src == dst:
            return
        cur = self.succs[src].get(dst)
        if cur is None or latency > cur:
            self.succs[src][dst] = latency
            self.preds[dst][src] = latency

    def topological_order(self) -> list[int]:
        """A topological order (Kahn); raises on cycles."""
        indeg = [len(p) for p in self.preds]
        stack = [i for i in range(self.n) if indeg[i] == 0]
        out: list[int] = []
        while stack:
            i = stack.pop()
            out.append(i)
            for s in self.succs[i]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    stack.append(s)
        if len(out) != self.n:
            raise ValueError("dependence graph has a cycle")
        return out


def _writes_by_object(
    instrs: list[Instruction], home_bindings: dict[str, Reg]
) -> dict[str, list[int]]:
    """Positions that redefine each scalar storage object.

    A scalar changes either through a store to its memory object or, once
    promoted, through a write of its home register.
    """
    reg_to_objs: dict[Reg, list[str]] = {}
    for obj, reg in home_bindings.items():
        reg_to_objs.setdefault(reg, []).append(obj)
    writes: dict[str, list[int]] = {}
    for i, ins in enumerate(instrs):
        if ins.op.info.is_store and ins.mem is not None:
            writes.setdefault(ins.mem.obj, []).append(i)
        if ins.dest is not None:
            for obj in reg_to_objs.get(ins.dest, ()):
                writes.setdefault(obj, []).append(i)
    return writes


def _mem_disjoint(
    a: MemRef | None,
    b: MemRef | None,
    i: int,
    j: int,
    level: AliasLevel,
    writes: dict[str, list[int]],
) -> bool:
    """Are the accesses at positions ``i < j`` provably disjoint?

    Applies the affine rule only when none of the affine core's variables
    is redefined strictly between the two positions.
    """
    if may_conflict(a, b, level) is False:
        return True
    if level < AliasLevel.AFFINE or a is None or b is None:
        return False
    if a.obj != b.obj:
        return False
    if a.offset is not None and b.offset is not None:
        return a.offset != b.offset
    if (
        a.affine is None
        or b.affine is None
        or a.affine[0] != b.affine[0]
        or a.affine[1] == b.affine[1]
    ):
        return False
    for var in set(a.affine_vars) | set(b.affine_vars):
        for pos in writes.get(var, ()):
            if i < pos < j:
                return False
    return True


def build_dag(
    block: BasicBlock,
    config: MachineConfig,
    alias_level: AliasLevel = AliasLevel.CONSERVATIVE,
    home_bindings: dict[str, Reg] | None = None,
) -> DepDAG:
    """Build the dependence DAG for ``block`` under ``config``.

    RAW edges carry the producer's operation latency (in the config's
    minor cycles); ordering-only edges carry latency 0.
    """
    instrs = block.instrs
    n = len(instrs)
    dag = DepDAG(n, [dict() for _ in range(n)], [dict() for _ in range(n)])
    writes = _writes_by_object(instrs, home_bindings or {})

    last_def: dict[Reg, int] = {}
    uses_since_def: dict[Reg, list[int]] = {}
    mem_ops: list[tuple[int, MemRef | None, bool]] = []
    barrier: int | None = None

    for i, ins in enumerate(instrs):
        info = ins.op.info

        if barrier is not None:
            dag.add_edge(barrier, i, 1)

        for src in ins.srcs:
            j = last_def.get(src)
            if j is not None:
                dag.add_edge(j, i, config.latencies[instrs[j].op.klass])
            uses_since_def.setdefault(src, []).append(i)

        dest = ins.dest
        if dest is not None:
            for u in uses_since_def.get(dest, ()):
                dag.add_edge(u, i, 0)  # WAR
            j = last_def.get(dest)
            if j is not None:
                dag.add_edge(j, i, 0)  # WAW
            last_def[dest] = i
            uses_since_def[dest] = []

        if info.is_mem:
            for j, mem_j, j_is_store in mem_ops:
                if not (j_is_store or info.is_store):
                    continue  # load-load never conflicts
                if _mem_disjoint(mem_j, ins.mem, j, i, alias_level, writes):
                    continue
                latency = (
                    config.latencies[Opcode.SW.klass]
                    if j_is_store and info.is_load
                    else 0
                )
                dag.add_edge(j, i, latency)
            mem_ops.append((i, ins.mem, info.is_store))

        if ins.op is Opcode.CALL:
            for j in range(i):
                dag.add_edge(j, i, 0)
            barrier = i

    if n and instrs[-1].is_terminator:
        for j in range(n - 1):
            dag.add_edge(j, n - 1, 0)
    return dag

"""Work plans: the grid of measurements an engine run executes.

A :class:`Plan` is an ordered tuple of :class:`Cell`\\ s, each one
(benchmark, CompilerOptions, MachineConfig) measurement.  Options are
resolved to concrete :class:`~repro.opt.options.CompilerOptions` at plan
build time (benchmark default overrides applied), so cells sharing a
compile unit have equal option fingerprints and the engine can group
them onto one compilation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..benchmarks import suite
from ..benchmarks.suite import Benchmark
from ..machine.config import MachineConfig
from ..machine.presets import resolve as resolve_machine
from ..opt.options import CompilerOptions


@dataclass(frozen=True, slots=True)
class Cell:
    """One (benchmark, options, machine) measurement to perform."""

    benchmark: str
    options: CompilerOptions
    machine: MachineConfig
    options_label: str = "default"

    def compile_key(self) -> tuple:
        """Grouping key: cells with equal keys share one compilation."""
        return (self.benchmark, self.options.fingerprint())

    @property
    def ident(self) -> str:
        """Human-readable cell identity for manifests and logs."""
        text = f"{self.benchmark}@{self.machine.name}"
        if self.options_label != "default":
            text += f"[{self.options_label}]"
        return text


@dataclass(frozen=True, slots=True)
class Plan:
    """An ordered grid of measurements.

    ``observe=True`` runs every cell's timing simulation with stall
    attribution (:mod:`repro.obs.stalls`).
    """

    cells: tuple[Cell, ...]
    observe: bool = False

    def __len__(self) -> int:
        return len(self.cells)

    def compile_groups(self) -> dict[tuple, list[int]]:
        """Cell indices grouped by compile unit, in first-seen order."""
        groups: dict[tuple, list[int]] = {}
        for i, cell in enumerate(self.cells):
            groups.setdefault(cell.compile_key(), []).append(i)
        return groups

    def group_labels(self) -> list[str]:
        """One human-readable label per compile group, aligned with
        :meth:`compile_groups` order (used for retry jitter keys and
        failure manifests)."""
        return [
            f"{self.cells[indices[0]].benchmark}"
            f"/{self.cells[indices[0]].options_label}"
            for indices in self.compile_groups().values()
        ]


def plan_sweep(
    benchmarks: Iterable[Benchmark | str],
    machines: Sequence[MachineConfig | str],
    *,
    options: CompilerOptions | None = None,
    options_label: str = "default",
    schedule_for_target: bool = False,
    observe: bool = False,
    scheduler: str | None = None,
) -> Plan:
    """Build the plan for a benchmarks-by-machines sweep.

    Mirrors :func:`repro.analysis.sweep.sweep`'s semantics: with
    ``schedule_for_target`` each cell recompiles scheduled for the
    machine it is measured on (the paper's methodology, exclusive with
    ``options``); otherwise one trace per benchmark is shared across
    machines.  Machines may be given as preset names
    (see :func:`repro.machine.presets.resolve`).

    ``scheduler`` pins every cell's scheduler backend (a
    :mod:`repro.sched.registry` name).  It is applied *after* the
    per-benchmark default options are resolved, so selecting a backend
    composes with benchmark overrides like linpack's unrolling; backend
    choice flows into each cell's option fingerprint and therefore the
    engine's compile groups and trace-cache keys.
    """
    if schedule_for_target and options is not None:
        raise ValueError("options and schedule_for_target are exclusive")
    configs = [resolve_machine(m) for m in machines]
    cells: list[Cell] = []
    for bench in benchmarks:
        if isinstance(bench, str):
            bench = suite.get(bench)
        for config in configs:
            if schedule_for_target:
                opts = suite.default_options(bench, schedule_for=config)
            else:
                opts = options or suite.default_options(bench)
            if scheduler is not None and opts.scheduler != scheduler:
                opts = dataclasses.replace(opts, scheduler=scheduler)
            cells.append(Cell(
                benchmark=bench.name,
                options=opts,
                machine=config,
                options_label=options_label,
            ))
    return Plan(cells=tuple(cells), observe=observe)

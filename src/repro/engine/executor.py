"""Execute a :class:`~repro.engine.plan.Plan`, serially or across a pool.

Cells are grouped by compile unit (equal benchmark + option
fingerprint): each group compiles/functionally-executes its benchmark
once — consulting the :class:`~repro.engine.cache.TraceCache` first —
then replays the trace on every machine in the group.  With
``workers > 1`` whole groups are fanned across a
:class:`concurrent.futures.ProcessPoolExecutor`; workers return only
picklable :class:`CellResult` payloads and the parent reassembles them
in plan order, so the parallel path is bit-identical to the serial one
(``workers=1``), which runs the exact same group code inline.

Execution is *supervised* (:mod:`repro.engine.resilience`): worker
crashes, hangs, and corrupt payloads cost bounded retries with backoff,
a broken pool is respawned with only unfinished groups requeued, and a
group that exhausts its worker budget is re-run once in-process before
being marked failed.  Every cell carries a structured ``status``
(``ok`` / ``retried`` / ``degraded`` / ``failed``) plus its attempt
history; ``ok`` cells are bit-identical to an unsupervised clean run.
Deterministic faults can be injected for testing via
:mod:`repro.engine.faults` (the ``REPRO_FAULTS`` environment variable).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..benchmarks import suite
from ..machine.config import MachineConfig
from ..obs.metrics import COUNT_BUCKETS, NULL_METRICS, MetricsRegistry
from ..obs.recorder import Recorder, active_recorder
from ..obs.resource import ResourceSampler
from ..obs.stalls import StallBreakdown
from ..obs.trace import (
    MAIN_TRACK,
    NULL_TRACER,
    Tracer,
    emit_span_events,
    worker_track,
)
from ..opt.options import CompilerOptions
from ..sim.memo import open_memo_store
from ..sim.replay import BACKEND
from ..sim.timing import simulate
from .cache import NULL_TRACE_CACHE, TraceCache, trace_key
from .faults import NO_FAULTS, FaultPlan
from .plan import Plan
from .resilience import (
    NO_LIMITS,
    GroupOutcome,
    ResourceLimits,
    RetryPolicy,
    SupervisionStats,
    run_group_serial,
    run_supervised,
)


@dataclass(slots=True)
class CellResult:
    """Everything one cell's measurement produced (picklable)."""

    benchmark: str
    options_label: str
    machine: str
    instructions: int
    checksum_ok: bool
    minor_cycles: int
    base_cycles: float
    parallelism: float
    #: stall attribution; populated only when the plan was observed
    stalls: StallBreakdown | None
    #: wall time of this cell's timing simulation
    seconds: float
    #: wall time of the group's compile step (shared across the group)
    compile_seconds: float
    #: True when the group's trace came from the on-disk cache
    compile_cached: bool
    #: replay-memo counters from the timing simulation
    #: (:meth:`~repro.sim.replay.ReplayStats.as_dict`), when available
    replay: dict | None = None
    #: supervision outcome: ok | retried | degraded | failed
    status: str = "ok"
    #: total attempts the cell's group consumed (1 for a clean run)
    attempts: int = 1
    #: final typed error (:meth:`CellError.as_dict`) for failed cells
    error: dict | None = None
    #: per-failed-attempt records (empty for a clean run)
    history: tuple = ()

    def to_timing(self):
        """Rebuild the equivalent :class:`~repro.sim.timing.TimingResult`
        (parallelism/cpi are derived, so nothing is lost in transit)."""
        from ..sim.timing import TimingResult

        return TimingResult(
            config_name=self.machine,
            instructions=self.instructions,
            minor_cycles=self.minor_cycles,
            base_cycles=self.base_cycles,
            stalls=self.stalls,
        )


@dataclass(slots=True)
class EngineReport:
    """Execution statistics for one engine run."""

    workers: int
    cells: int
    groups: int
    cache_hits: int
    cache_misses: int
    seconds: float
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: replay-memo counters summed over every cell's timing simulation
    memo_hits: int = 0
    memo_misses: int = 0
    memo_fallbacks: int = 0
    #: dynamic instructions advanced via memo hits vs replayed directly
    memo_instructions: int = 0
    direct_instructions: int = 0
    #: block events replayed by the vectorized kernel / forced back to
    #: the scalar engine after a failed verification (see
    #: :class:`repro.sim.replay.ReplayStats`)
    vectorized_blocks: int = 0
    scalar_fallback_blocks: int = 0
    #: memo hits served from persisted payloads (disk or registry)
    memo_persisted_hits: int = 0
    #: active replay backend (:data:`repro.sim.replay.BACKEND`)
    replay_backend: str = ""
    #: supervision outcome counts (ok + retried + degraded + failed == cells)
    ok_cells: int = 0
    retried_cells: int = 0
    degraded_cells: int = 0
    failed_cells: int = 0
    #: failed group attempts (each consumed one retry-ladder slot)
    group_retries: int = 0
    #: times the worker pool was killed and respawned
    pool_restarts: int = 0

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cells": self.cells,
            "groups": self.groups,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "seconds": self.seconds,
            "compile_seconds": self.compile_seconds,
            "sim_seconds": self.sim_seconds,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_fallbacks": self.memo_fallbacks,
            "memo_instructions": self.memo_instructions,
            "direct_instructions": self.direct_instructions,
            "vectorized_blocks": self.vectorized_blocks,
            "scalar_fallback_blocks": self.scalar_fallback_blocks,
            "memo_persisted_hits": self.memo_persisted_hits,
            "replay_backend": self.replay_backend,
            "ok_cells": self.ok_cells,
            "retried_cells": self.retried_cells,
            "degraded_cells": self.degraded_cells,
            "failed_cells": self.failed_cells,
            "group_retries": self.group_retries,
            "pool_restarts": self.pool_restarts,
        }

    def summary(self) -> str:
        """One-line human rendering for the CLI."""
        text = (
            f"engine: {self.cells} cells in {self.groups} compile groups, "
            f"workers={self.workers}, cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {self.seconds:.2f}s wall"
        )
        total = self.memo_instructions + self.direct_instructions
        if total:
            text += (
                f" | replay memo {self.memo_hits} hit / "
                f"{self.memo_misses} miss / "
                f"{self.memo_fallbacks} fallback, "
                f"{self.memo_instructions / total:.0%} of instructions "
                f"memoized"
            )
        if self.retried_cells or self.degraded_cells or self.failed_cells:
            text += (
                f" | status {self.ok_cells} ok / "
                f"{self.retried_cells} retried / "
                f"{self.degraded_cells} degraded / "
                f"{self.failed_cells} FAILED "
                f"({self.group_retries} retries, "
                f"{self.pool_restarts} pool restarts)"
            )
        return text


@dataclass(slots=True)
class EngineResult:
    """Cell results in plan order plus the engine report."""

    cells: list[CellResult] = field(default_factory=list)
    report: EngineReport | None = None
    #: per-track resource telemetry summaries (``sample_resources`` runs
    #: only): one dict per track, parent first, workers in merge order
    resources: list[dict] = field(default_factory=list)

    def failed_cells(self) -> list[CellResult]:
        """Cells that exhausted the whole degradation ladder."""
        return [c for c in self.cells if c.status == "failed"]


def _run_group(
    benchmark: str,
    options: CompilerOptions,
    machine_cells: list[tuple[int, MachineConfig, str]],
    observe: bool,
    cache: TraceCache,
    faults: FaultPlan = NO_FAULTS,
    attempt: int = 1,
    limits: ResourceLimits = NO_LIMITS,
    in_worker: bool = False,
    tracer: Tracer = NULL_TRACER,
    metrics: MetricsRegistry = NULL_METRICS,
) -> tuple[list[tuple[int, CellResult]], bool]:
    """Compile one group's benchmark and measure every machine in it.

    ``machine_cells`` carries ``(plan_index, machine, options_label)``
    triples; the plan index rides along so the caller can reassemble
    results in plan order regardless of completion order.  ``faults``
    and ``attempt`` drive deterministic fault injection; ``limits``
    enforces the per-cell instruction-budget and RSS guardrails.

    ``tracer``/``metrics`` receive the group/cache/compile/simulate
    spans and the cache/replay/timing metrics; both default to the
    zero-overhead null sinks.
    """
    bench = suite.get(benchmark)
    if faults:
        faults.fire_group_faults(
            benchmark, [m.name for _, m, _ in machine_cells],
            attempt, in_worker,
        )
    with tracer.span("group.run", cat="engine", benchmark=benchmark,
                     cells=len(machine_cells), attempt=attempt):
        start = time.perf_counter()
        if cache.enabled and cache.stats.debris:
            # Surface (once) what the startup janitor removed.
            metrics.incr("cache.debris", cache.stats.debris)
            cache.stats.debris = 0
        # In-process memo first (free), then the on-disk cache, then
        # compile.
        result = suite.cached_run(bench, options)
        if result is None and cache.enabled:
            corrupt_before = cache.stats.corrupt
            with tracer.span("cache.get", cat="cache",
                             benchmark=benchmark):
                result = cache.load(trace_key(bench.source(), options))
            metrics.incr("cache.gets")
            if result is not None:
                metrics.incr("cache.hits")
                # Share the cached run with in-process callers
                # (exhibits, etc.).
                suite.seed_run(bench, options, result)
            elif cache.stats.corrupt > corrupt_before:
                metrics.incr("cache.corrupt")
            else:
                metrics.incr("cache.misses")
        cached = result is not None
        if result is None:
            with tracer.span("compile.run", cat="compile",
                             benchmark=benchmark):
                result = suite.run_benchmark(
                    bench, options,
                    max_instructions=limits.max_instructions,
                )
            if cache.enabled:
                key = trace_key(bench.source(), options)
                with tracer.span("cache.put", cat="cache",
                                 benchmark=benchmark):
                    cache.store(key, result)
                metrics.incr("cache.stores")
                if faults:
                    faults.maybe_corrupt_cache(cache, key, benchmark,
                                               attempt)
        limits.check_rss()
        compile_seconds = time.perf_counter() - start
        if not cached:
            metrics.observe("compile.seconds", compile_seconds)
        checksum_ok = (abs(result.value - bench.reference())
                       <= bench.fp_tolerance)

        # Persistent replay-memo store inside the trace cache's
        # directory: warm-starts every cell's replay from previously
        # learned memo tables (disabled alongside the cache, keeping
        # cacheless runs byte-for-byte deterministic).
        memo = open_memo_store(cache)

        out: list[tuple[int, CellResult]] = []
        for index, machine, label in machine_cells:
            t0 = time.perf_counter()
            with tracer.span("simulate", cat="sim", benchmark=benchmark,
                             machine=machine.name):
                timing = simulate(result.trace, machine, observe=observe,
                                  memo=memo)
            cell = CellResult(
                benchmark=benchmark,
                options_label=label,
                machine=machine.name,
                instructions=result.instructions,
                checksum_ok=checksum_ok,
                minor_cycles=timing.minor_cycles,
                base_cycles=timing.base_cycles,
                parallelism=timing.parallelism,
                stalls=timing.stalls,
                seconds=time.perf_counter() - t0,
                compile_seconds=compile_seconds,
                compile_cached=cached,
                replay=(timing.replay.as_dict()
                        if timing.replay is not None else None),
            )
            if metrics.enabled:
                metrics.incr("engine.cells")
                metrics.observe("cell.sim.seconds", cell.seconds)
                metrics.observe("cell.instructions", cell.instructions,
                                bounds=COUNT_BUCKETS)
                if timing.replay is not None:
                    timing.replay.record_to(metrics)
            if faults:
                cell = faults.maybe_corrupt_cell(cell, attempt)
            out.append((index, cell))
        memo.stats.record_to(metrics)
    return out, cached


def _run_group_task(payload: tuple):
    """Pool entry point: rebuild the cache handle and run one group.

    With ``traced`` set, the worker buffers spans/metrics into local
    collectors and ships them back as a third payload element — the
    existing result round-trip is the only IPC.  With ``sample`` set a
    :class:`~repro.obs.resource.ResourceSampler` additionally records
    this worker's RSS/CPU gauges for the duration of the group and its
    summary rides home on the same element.  (Older 9-tuple payloads
    without the flag are accepted for compatibility.)
    """
    (benchmark, options, machine_cells, observe,
     cache_root, attempt, faults, limits, traced) = payload[:9]
    sample = payload[9] if len(payload) > 9 else False
    cache = TraceCache(cache_root) if cache_root else NULL_TRACE_CACHE
    if not traced:
        return _run_group(
            benchmark, options, machine_cells, observe, cache,
            faults=faults, attempt=attempt, limits=limits, in_worker=True,
        )
    tracer = Tracer(track=worker_track())
    metrics = MetricsRegistry()
    sampler = None
    if sample:
        sampler = ResourceSampler(metrics, track=worker_track()).start()
    try:
        results, cached = _run_group(
            benchmark, options, machine_cells, observe, cache,
            faults=faults, attempt=attempt, limits=limits, in_worker=True,
            tracer=tracer, metrics=metrics,
        )
    finally:
        resource = sampler.stop() if sampler is not None else None
    obs = {"spans": tracer.export(), "metrics": metrics.as_dict()}
    if resource is not None:
        obs["resource"] = resource
    return results, cached, obs


def _prime_one(
    benchmark: str, options: CompilerOptions, cache: TraceCache
):
    """Compile/run one benchmark through the cache; returns (run, hit?)."""
    bench = suite.get(benchmark)
    result = suite.cached_run(bench, options)
    if result is None and cache.enabled:
        result = cache.load(trace_key(bench.source(), options))
        if result is not None:
            suite.seed_run(bench, options, result)
    cached = result is not None
    if result is None:
        result = suite.run_benchmark(bench, options)
        if cache.enabled:
            cache.store(trace_key(bench.source(), options), result)
    return result, cached


def _prime_task(payload: tuple):
    """Pool entry point for :func:`prime_runs`."""
    index, benchmark, options, cache_root = payload
    cache = TraceCache(cache_root) if cache_root else NULL_TRACE_CACHE
    result, cached = _prime_one(benchmark, options, cache)
    return index, result, cached


def prime_runs(
    jobs: list[tuple[str, CompilerOptions]],
    *,
    workers: int = 1,
    cache: TraceCache | None = None,
) -> EngineReport:
    """Warm the in-process run memo for a set of compilations.

    ``jobs`` is a list of (benchmark name, options) compile units;
    duplicates (by option fingerprint) collapse to one compile.  With
    ``workers>1`` compiles fan across a process pool and the resulting
    runs — traces included — are shipped back and seeded into
    :mod:`repro.benchmarks.suite`'s memo, so subsequent inline code
    (e.g. the exhibit drivers) never recompiles.  The disk cache, when
    given, is populated as a side effect and serves later runs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    disk_cache = cache if cache is not None else NULL_TRACE_CACHE
    unique: dict[tuple, tuple[str, CompilerOptions]] = {}
    for benchmark, options in jobs:
        unique.setdefault((benchmark, options.fingerprint()),
                          (benchmark, options))
    work = list(unique.values())
    start = time.perf_counter()
    hits = misses = 0

    if workers == 1 or len(work) <= 1:
        for benchmark, options in work:
            _, cached = _prime_one(benchmark, options, disk_cache)
            hits, misses = hits + cached, misses + (not cached)
    else:
        cache_root = disk_cache.root if disk_cache.enabled else ""
        payloads = [(i, b, o, cache_root)
                    for i, (b, o) in enumerate(work)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, result, cached in pool.map(_prime_task, payloads):
                benchmark, options = work[index]
                suite.seed_run(suite.get(benchmark), options, result)
                hits, misses = hits + cached, misses + (not cached)

    seconds = time.perf_counter() - start
    return EngineReport(
        workers=workers,
        cells=0,
        groups=len(work),
        cache_hits=hits,
        cache_misses=misses,
        seconds=seconds,
        compile_seconds=seconds,
    )


def _failed_group_cells(
    plan: Plan, indices: list[int], outcome: GroupOutcome,
) -> list[tuple[int, CellResult]]:
    """Placeholder cells for a group that exhausted the whole ladder."""
    error = outcome.error.as_dict() if outcome.error is not None else None
    history = tuple(r.as_dict() for r in outcome.history)
    out = []
    for index in indices:
        cell = plan.cells[index]
        out.append((index, CellResult(
            benchmark=cell.benchmark,
            options_label=cell.options_label,
            machine=cell.machine.name,
            instructions=0,
            checksum_ok=False,
            minor_cycles=0,
            base_cycles=0.0,
            parallelism=0.0,
            stalls=None,
            seconds=0.0,
            compile_seconds=0.0,
            compile_cached=False,
            replay=None,
            status="failed",
            attempts=outcome.attempts,
            error=error,
            history=history,
        )))
    return out


def _merge_resource(acc: dict[str, dict], summary: dict) -> None:
    """Fold one worker's resource summary into the per-track aggregate.

    A pool worker runs many groups over its lifetime, each shipping one
    summary under the same track name: peaks and CPU time are
    monotonically non-decreasing per process, so keep the max; sample
    counts accumulate; the latest ``rss_mb`` wins.
    """
    track = summary["track"]
    prev = acc.get(track)
    if prev is None:
        acc[track] = dict(summary)
        return
    prev["rss_mb"] = summary["rss_mb"]
    prev["rss_peak_mb"] = max(prev["rss_peak_mb"], summary["rss_peak_mb"])
    prev["cpu_seconds"] = max(prev["cpu_seconds"], summary["cpu_seconds"])
    prev["samples"] += summary["samples"]


def execute(
    plan: Plan,
    *,
    workers: int = 1,
    cache: TraceCache | None = None,
    recorder: Recorder | None = None,
    policy: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    progress=None,
    sample_resources: bool = False,
) -> EngineResult:
    """Execute every cell of ``plan`` and return results in plan order.

    ``workers=1`` runs the groups inline (the serial fallback);
    ``workers>1`` fans them across a supervised process pool.  ``cache``
    (a :class:`~repro.engine.cache.TraceCache`, or ``None`` for no disk
    cache) is consulted before every compile and populated after every
    miss, in the parent and in every worker alike.

    ``policy`` configures the retry/backoff/timeout/degradation ladder
    (:class:`~repro.engine.resilience.RetryPolicy`, default policy when
    ``None``); ``faults`` injects deterministic failures for testing
    (default: whatever ``$REPRO_FAULTS`` names; an empty plan when
    unset).  A sweep always completes: cells that fail every rung of
    the ladder come back with ``status="failed"`` and a typed error
    instead of aborting the run.

    ``recorder`` receives one ``cell`` event per cell (in plan order)
    and a closing ``engine`` summary event, followed by the run's
    ``span`` events and one ``metrics`` snapshot.

    ``tracer``/``metrics`` opt into span tracing and the metrics
    registry explicitly (pass your own to keep a handle on the merged
    run — e.g. for :func:`~repro.obs.trace.write_chrome_trace`); when
    ``None`` they are auto-enabled iff a recorder is active, so plain
    ``execute(plan)`` stays on the zero-overhead null path.  Workers
    buffer spans/metrics locally and ship them back on the result
    payload; the parent merges them in plan order, which keeps merged
    metric values deterministic.  ``progress(group_key, outcome,
    n_cells)`` is called as each group settles (the ``--live`` hook).

    ``sample_resources=True`` additionally runs a
    :class:`~repro.obs.resource.ResourceSampler` thread in the parent
    and in every worker, recording per-track RSS/CPU gauges into the
    metrics registry and per-track summaries onto the result (and as
    ``resource`` report events).  Strictly opt-in: the gauges are
    wall-clock-dependent, so the default path keeps its bit-identical
    merged-metrics guarantee.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    rec = active_recorder(recorder)
    tr = tracer if tracer is not None else (
        Tracer() if rec.enabled else NULL_TRACER)
    mx = metrics if metrics is not None else (
        MetricsRegistry() if rec.enabled or sample_resources
        else NULL_METRICS)
    retry_policy = policy if policy is not None else RetryPolicy()
    fault_plan = faults if faults is not None else FaultPlan.from_env()
    disk_cache = cache if cache is not None else NULL_TRACE_CACHE
    groups = plan.compile_groups()
    start = time.perf_counter()
    slots: list[CellResult | None] = [None] * len(plan.cells)
    hits = misses = 0
    compile_seconds = 0.0
    stats = SupervisionStats()

    group_indices = list(groups.values())
    group_args = [
        (
            plan.cells[indices[0]].benchmark,
            plan.cells[indices[0]].options,
            [(i, plan.cells[i].machine, plan.cells[i].options_label)
             for i in indices],
            plan.observe,
        )
        for indices in group_indices
    ]
    group_keys = plan.group_labels()

    sampler = (ResourceSampler(mx, track=MAIN_TRACK).start()
               if sample_resources else None)
    #: per-track worker summaries, aggregated in merge (plan) order
    worker_resources: dict[str, dict] = {}

    def serial_runner(base: tuple, attempt: int):
        benchmark, options, machine_cells, observe = base
        return _run_group(
            benchmark, options, machine_cells, observe, disk_cache,
            faults=fault_plan, attempt=attempt,
            limits=retry_policy.limits, in_worker=False,
            tracer=tr, metrics=mx,
        )

    with tr.span("engine.run", cat="engine", workers=workers,
                 cells=len(plan.cells), groups=len(group_args)):
        root_id = tr.current_id()

        if workers == 1 or len(group_args) <= 1:
            outcomes = []
            for key, base, indices in zip(group_keys, group_args,
                                          group_indices):
                outcome = run_group_serial(
                    key,
                    lambda attempt, base=base: serial_runner(base, attempt),
                    retry_policy,
                    expected_indices=set(indices),
                    tracer=tr,
                )
                if progress is not None:
                    progress(key, outcome, len(indices))
                outcomes.append(outcome)
        else:
            cache_root = disk_cache.root if disk_cache.enabled else ""
            traced = tr.enabled or mx.enabled

            def make_payload(base: tuple, attempt: int) -> tuple:
                return base + (cache_root, attempt, fault_plan,
                               retry_policy.limits, traced,
                               sample_resources)

            outcomes = run_supervised(
                [(key, base, set(indices))
                 for key, base, indices
                 in zip(group_keys, group_args, group_indices)],
                workers=workers,
                task=_run_group_task,
                make_payload=make_payload,
                serial_runner=serial_runner,
                policy=retry_policy,
                faults=fault_plan,
                stats=stats,
                tracer=tr,
                progress=progress,
            )

        for indices, outcome in zip(group_indices, outcomes):
            # Splice worker-buffered spans/metrics into the parent
            # collectors, in plan order (deterministic merge).
            if outcome.obs:
                tr.merge(outcome.obs.get("spans") or [],
                         parent_id=root_id)
                mx.merge(outcome.obs.get("metrics"))
                summary = outcome.obs.get("resource")
                if summary:
                    _merge_resource(worker_resources, summary)
            if outcome.status == "failed":
                installed = _failed_group_cells(plan, indices, outcome)
            else:
                assert outcome.results is not None
                installed = outcome.results
                for _, cell_result in installed:
                    cell_result.status = outcome.status
                    cell_result.attempts = outcome.attempts
                    cell_result.history = tuple(
                        r.as_dict() for r in outcome.history
                    )
                compile_seconds += installed[0][1].compile_seconds
                if outcome.cached:
                    hits += 1
                else:
                    misses += 1
            for index, cell_result in installed:
                slots[index] = cell_result

    resources: list[dict] = []
    if sampler is not None:
        resources.append(sampler.stop())
    resources.extend(worker_resources.values())

    cells = [c for c in slots if c is not None]
    assert len(cells) == len(plan.cells), "engine lost cell results"
    seconds = time.perf_counter() - start
    report = EngineReport(
        workers=workers,
        cells=len(cells),
        groups=len(groups),
        cache_hits=hits,
        cache_misses=misses,
        seconds=seconds,
        compile_seconds=compile_seconds,
        sim_seconds=sum(c.seconds for c in cells),
        ok_cells=sum(1 for c in cells if c.status == "ok"),
        retried_cells=sum(1 for c in cells if c.status == "retried"),
        degraded_cells=sum(1 for c in cells if c.status == "degraded"),
        failed_cells=sum(1 for c in cells if c.status == "failed"),
        group_retries=sum(len(o.history) for o in outcomes),
        pool_restarts=stats.pool_restarts,
    )
    report.replay_backend = BACKEND
    for c in cells:
        if c.replay:
            report.memo_hits += c.replay.get("memo_hits", 0)
            report.memo_misses += c.replay.get("memo_misses", 0)
            report.memo_fallbacks += c.replay.get("fallbacks", 0)
            report.memo_instructions += c.replay.get(
                "memo_instructions", 0)
            report.direct_instructions += c.replay.get(
                "direct_instructions", 0)
            report.vectorized_blocks += c.replay.get(
                "vectorized_blocks", 0)
            report.scalar_fallback_blocks += c.replay.get(
                "scalar_fallback_blocks", 0)
            report.memo_persisted_hits += c.replay.get(
                "memo_persisted_hits", 0)
    if mx.enabled:
        mx.gauge("engine.workers", workers)
        mx.incr("engine.groups", len(groups))
        mx.incr("engine.cells.ok", report.ok_cells)
        mx.incr("engine.cells.retried", report.retried_cells)
        mx.incr("engine.cells.degraded", report.degraded_cells)
        mx.incr("engine.cells.failed", report.failed_cells)
        mx.incr("engine.group_retries", report.group_retries)
        mx.incr("engine.pool_restarts", report.pool_restarts)
    if rec.enabled:
        # `cells` is plan-ordered (slots are filled by plan index), so
        # each result's scheduler comes from the matching plan cell.
        for plan_cell, c in zip(plan.cells, cells):
            event = {
                "benchmark": c.benchmark,
                "machine": c.machine,
                "options": c.options_label,
                "scheduler": plan_cell.options.scheduler,
                "seconds": c.seconds,
                "cached": c.compile_cached,
                "status": c.status,
                "attempts": c.attempts,
                "instructions": c.instructions,
                "minor_cycles": c.minor_cycles,
                "base_cycles": c.base_cycles,
                "parallelism": c.parallelism,
            }
            if c.stalls is not None:
                event["stalls"] = c.stalls.as_dict()
            if c.replay is not None:
                event["replay"] = c.replay
            if c.error is not None:
                event["error"] = c.error
            if c.history:
                event["history"] = list(c.history)
            rec.emit("cell", **event)
            rec.incr("engine.cells")
        rec.emit("engine", **report.as_dict())
        for summary in resources:
            rec.emit("resource", **summary)
        emit_span_events(rec, tr)
        if mx.enabled:
            rec.emit("metrics", **mx.as_dict())
    return EngineResult(cells=cells, report=report, resources=resources)

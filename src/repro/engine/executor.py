"""Execute a :class:`~repro.engine.plan.Plan`, serially or across a pool.

Cells are grouped by compile unit (equal benchmark + option
fingerprint): each group compiles/functionally-executes its benchmark
once — consulting the :class:`~repro.engine.cache.TraceCache` first —
then replays the trace on every machine in the group.  With
``workers > 1`` whole groups are fanned across a
:class:`~concurrent.futures.ProcessPoolExecutor`; workers return only
picklable :class:`CellResult` payloads and the parent reassembles them
in plan order, so the parallel path is bit-identical to the serial one
(``workers=1``), which runs the exact same group code inline.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field

from ..benchmarks import suite
from ..machine.config import MachineConfig
from ..obs.recorder import Recorder, active_recorder
from ..obs.stalls import StallBreakdown
from ..opt.options import CompilerOptions
from ..sim.timing import simulate
from .cache import NULL_TRACE_CACHE, TraceCache, trace_key
from .plan import Plan


@dataclass(slots=True)
class CellResult:
    """Everything one cell's measurement produced (picklable)."""

    benchmark: str
    options_label: str
    machine: str
    instructions: int
    checksum_ok: bool
    minor_cycles: int
    base_cycles: float
    parallelism: float
    #: stall attribution; populated only when the plan was observed
    stalls: StallBreakdown | None
    #: wall time of this cell's timing simulation
    seconds: float
    #: wall time of the group's compile step (shared across the group)
    compile_seconds: float
    #: True when the group's trace came from the on-disk cache
    compile_cached: bool
    #: replay-memo counters from the timing simulation
    #: (:meth:`~repro.sim.replay.ReplayStats.as_dict`), when available
    replay: dict | None = None

    def to_timing(self):
        """Rebuild the equivalent :class:`~repro.sim.timing.TimingResult`
        (parallelism/cpi are derived, so nothing is lost in transit)."""
        from ..sim.timing import TimingResult

        return TimingResult(
            config_name=self.machine,
            instructions=self.instructions,
            minor_cycles=self.minor_cycles,
            base_cycles=self.base_cycles,
            stalls=self.stalls,
        )


@dataclass(slots=True)
class EngineReport:
    """Execution statistics for one engine run."""

    workers: int
    cells: int
    groups: int
    cache_hits: int
    cache_misses: int
    seconds: float
    compile_seconds: float = 0.0
    sim_seconds: float = 0.0
    #: replay-memo counters summed over every cell's timing simulation
    memo_hits: int = 0
    memo_misses: int = 0
    memo_fallbacks: int = 0
    #: dynamic instructions advanced via memo hits vs replayed directly
    memo_instructions: int = 0
    direct_instructions: int = 0

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "cells": self.cells,
            "groups": self.groups,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "seconds": self.seconds,
            "compile_seconds": self.compile_seconds,
            "sim_seconds": self.sim_seconds,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "memo_fallbacks": self.memo_fallbacks,
            "memo_instructions": self.memo_instructions,
            "direct_instructions": self.direct_instructions,
        }

    def summary(self) -> str:
        """One-line human rendering for the CLI."""
        text = (
            f"engine: {self.cells} cells in {self.groups} compile groups, "
            f"workers={self.workers}, cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss, {self.seconds:.2f}s wall"
        )
        total = self.memo_instructions + self.direct_instructions
        if total:
            text += (
                f" | replay memo {self.memo_hits} hit / "
                f"{self.memo_misses} miss / "
                f"{self.memo_fallbacks} fallback, "
                f"{self.memo_instructions / total:.0%} of instructions "
                f"memoized"
            )
        return text


@dataclass(slots=True)
class EngineResult:
    """Cell results in plan order plus the engine report."""

    cells: list[CellResult] = field(default_factory=list)
    report: EngineReport | None = None


def _run_group(
    benchmark: str,
    options: CompilerOptions,
    machine_cells: list[tuple[int, MachineConfig, str]],
    observe: bool,
    cache: TraceCache,
) -> tuple[list[tuple[int, CellResult]], bool]:
    """Compile one group's benchmark and measure every machine in it.

    ``machine_cells`` carries ``(plan_index, machine, options_label)``
    triples; the plan index rides along so the caller can reassemble
    results in plan order regardless of completion order.
    """
    bench = suite.get(benchmark)
    start = time.perf_counter()
    # In-process memo first (free), then the on-disk cache, then compile.
    result = suite.cached_run(bench, options)
    if result is None and cache.enabled:
        result = cache.load(trace_key(bench.source(), options))
        if result is not None:
            # Share the cached run with in-process callers (exhibits, etc.).
            suite.seed_run(bench, options, result)
    cached = result is not None
    if result is None:
        result = suite.run_benchmark(bench, options)
        if cache.enabled:
            cache.store(trace_key(bench.source(), options), result)
    compile_seconds = time.perf_counter() - start
    checksum_ok = abs(result.value - bench.reference()) <= bench.fp_tolerance

    out: list[tuple[int, CellResult]] = []
    for index, machine, label in machine_cells:
        t0 = time.perf_counter()
        timing = simulate(result.trace, machine, observe=observe)
        out.append((index, CellResult(
            benchmark=benchmark,
            options_label=label,
            machine=machine.name,
            instructions=result.instructions,
            checksum_ok=checksum_ok,
            minor_cycles=timing.minor_cycles,
            base_cycles=timing.base_cycles,
            parallelism=timing.parallelism,
            stalls=timing.stalls,
            seconds=time.perf_counter() - t0,
            compile_seconds=compile_seconds,
            compile_cached=cached,
            replay=(timing.replay.as_dict()
                    if timing.replay is not None else None),
        )))
    return out, cached


def _run_group_task(payload: tuple) -> tuple[list[tuple[int, "CellResult"]], bool]:
    """Pool entry point: rebuild the cache handle and run one group."""
    benchmark, options, machine_cells, observe, cache_root = payload
    cache = TraceCache(cache_root) if cache_root else NULL_TRACE_CACHE
    return _run_group(benchmark, options, machine_cells, observe, cache)


def _prime_one(
    benchmark: str, options: CompilerOptions, cache: TraceCache
):
    """Compile/run one benchmark through the cache; returns (run, hit?)."""
    bench = suite.get(benchmark)
    result = suite.cached_run(bench, options)
    if result is None and cache.enabled:
        result = cache.load(trace_key(bench.source(), options))
        if result is not None:
            suite.seed_run(bench, options, result)
    cached = result is not None
    if result is None:
        result = suite.run_benchmark(bench, options)
        if cache.enabled:
            cache.store(trace_key(bench.source(), options), result)
    return result, cached


def _prime_task(payload: tuple):
    """Pool entry point for :func:`prime_runs`."""
    index, benchmark, options, cache_root = payload
    cache = TraceCache(cache_root) if cache_root else NULL_TRACE_CACHE
    result, cached = _prime_one(benchmark, options, cache)
    return index, result, cached


def prime_runs(
    jobs: list[tuple[str, CompilerOptions]],
    *,
    workers: int = 1,
    cache: TraceCache | None = None,
) -> EngineReport:
    """Warm the in-process run memo for a set of compilations.

    ``jobs`` is a list of (benchmark name, options) compile units;
    duplicates (by option fingerprint) collapse to one compile.  With
    ``workers>1`` compiles fan across a process pool and the resulting
    runs — traces included — are shipped back and seeded into
    :mod:`repro.benchmarks.suite`'s memo, so subsequent inline code
    (e.g. the exhibit drivers) never recompiles.  The disk cache, when
    given, is populated as a side effect and serves later runs.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    disk_cache = cache if cache is not None else NULL_TRACE_CACHE
    unique: dict[tuple, tuple[str, CompilerOptions]] = {}
    for benchmark, options in jobs:
        unique.setdefault((benchmark, options.fingerprint()),
                          (benchmark, options))
    work = list(unique.values())
    start = time.perf_counter()
    hits = misses = 0

    if workers == 1 or len(work) <= 1:
        for benchmark, options in work:
            _, cached = _prime_one(benchmark, options, disk_cache)
            hits, misses = hits + cached, misses + (not cached)
    else:
        cache_root = disk_cache.root if disk_cache.enabled else ""
        payloads = [(i, b, o, cache_root)
                    for i, (b, o) in enumerate(work)]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, result, cached in pool.map(_prime_task, payloads):
                benchmark, options = work[index]
                suite.seed_run(suite.get(benchmark), options, result)
                hits, misses = hits + cached, misses + (not cached)

    seconds = time.perf_counter() - start
    return EngineReport(
        workers=workers,
        cells=0,
        groups=len(work),
        cache_hits=hits,
        cache_misses=misses,
        seconds=seconds,
        compile_seconds=seconds,
    )


def execute(
    plan: Plan,
    *,
    workers: int = 1,
    cache: TraceCache | None = None,
    recorder: Recorder | None = None,
) -> EngineResult:
    """Execute every cell of ``plan`` and return results in plan order.

    ``workers=1`` runs the groups inline (the serial fallback);
    ``workers>1`` fans them across a process pool.  ``cache`` (a
    :class:`~repro.engine.cache.TraceCache`, or ``None`` for no disk
    cache) is consulted before every compile and populated after every
    miss, in the parent and in every worker alike.

    ``recorder`` receives one ``cell`` event per cell (in plan order)
    and a closing ``engine`` summary event.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    rec = active_recorder(recorder)
    disk_cache = cache if cache is not None else NULL_TRACE_CACHE
    groups = plan.compile_groups()
    start = time.perf_counter()
    slots: list[CellResult | None] = [None] * len(plan.cells)
    hits = misses = 0
    compile_seconds = 0.0

    def _install(done: list[tuple[int, CellResult]], cached: bool) -> None:
        nonlocal hits, misses, compile_seconds
        for index, cell_result in done:
            slots[index] = cell_result
        if done:
            compile_seconds += done[0][1].compile_seconds
        if cached:
            hits += 1
        else:
            misses += 1

    group_args = [
        (
            plan.cells[indices[0]].benchmark,
            plan.cells[indices[0]].options,
            [(i, plan.cells[i].machine, plan.cells[i].options_label)
             for i in indices],
            plan.observe,
        )
        for indices in groups.values()
    ]

    if workers == 1 or len(group_args) <= 1:
        for benchmark, options, machine_cells, observe in group_args:
            _install(*_run_group(
                benchmark, options, machine_cells, observe, disk_cache
            ))
    else:
        cache_root = disk_cache.root if disk_cache.enabled else ""
        payloads = [args + (cache_root,) for args in group_args]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(_run_group_task, p) for p in payloads}
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    _install(*future.result())

    cells = [c for c in slots if c is not None]
    assert len(cells) == len(plan.cells), "engine lost cell results"
    seconds = time.perf_counter() - start
    report = EngineReport(
        workers=workers,
        cells=len(cells),
        groups=len(groups),
        cache_hits=hits,
        cache_misses=misses,
        seconds=seconds,
        compile_seconds=compile_seconds,
        sim_seconds=sum(c.seconds for c in cells),
    )
    for c in cells:
        if c.replay:
            report.memo_hits += c.replay.get("memo_hits", 0)
            report.memo_misses += c.replay.get("memo_misses", 0)
            report.memo_fallbacks += c.replay.get("fallbacks", 0)
            report.memo_instructions += c.replay.get(
                "memo_instructions", 0)
            report.direct_instructions += c.replay.get(
                "direct_instructions", 0)
    if rec.enabled:
        for c in cells:
            event = {
                "benchmark": c.benchmark,
                "machine": c.machine,
                "options": c.options_label,
                "seconds": c.seconds,
                "cached": c.compile_cached,
            }
            if c.replay is not None:
                event["replay"] = c.replay
            rec.emit("cell", **event)
            rec.incr("engine.cells")
        rec.emit("engine", **report.as_dict())
    return EngineResult(cells=cells, report=report)

"""Content-addressed on-disk cache for compiled/simulated traces.

A cache entry is one :class:`~repro.sim.interp.RunResult` — the compiled
program's functional execution, including the dynamic trace the timing
model replays.  The key is a SHA-256 over

* the benchmark's **source text**,
* the full :meth:`~repro.opt.options.CompilerOptions.fingerprint` (which
  itself embeds the target machine's
  :meth:`~repro.machine.config.MachineConfig.fingerprint` and the
  scheduler backend name, so e.g. ``"list"`` and ``"exact"``
  compilations never share an entry), and
* the package version plus a cache format tag,

so a hit is only possible when the compilation would be bit-identical.
Entries are pickles written atomically (temp file + ``os.replace``), so
concurrent engine workers and concurrent runs can share one directory;
a corrupt or unreadable entry is treated as a miss and replaced.

The default location is ``.repro-cache`` under the current directory,
overridable with the ``REPRO_CACHE_DIR`` environment variable or the
``--cache-dir`` CLI flag.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from dataclasses import dataclass

from .. import __version__
from ..errors import TraceError
from ..opt.options import CompilerOptions
from ..sim.interp import RunResult
from ..sim.trace import Trace

#: Bump when the pickled payload layout changes incompatibly.
#: v2: run-length encoded traces with a flat memory-address side array
#: (see :mod:`repro.sim.trace`).
_FORMAT = "trace-v2"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

#: A ``*.tmp`` file this much older than "now" is crash debris: no
#: healthy writer holds a temp file for an hour.
DEBRIS_MAX_AGE = 3600.0

#: Roots already swept this process — stores are cheap handles opened
#: per group/worker task, so each directory tree is walked only once.
_SWEPT_ROOTS: set[str] = set()


def reset_debris_sweeps() -> None:
    """Forget which roots were swept (tests re-plant debris)."""
    _SWEPT_ROOTS.clear()


def sweep_debris(root: str, max_age: float = DEBRIS_MAX_AGE, *,
                 prune: tuple[str, ...] = (), now: float | None = None,
                 ) -> int:
    """Remove orphaned ``*.tmp`` files under ``root``; return the count.

    Atomic-write temp files are normally renamed or unlinked within the
    writing call; one that survives past ``max_age`` was left by a
    killed writer.  Young temp files are left alone — they may belong
    to a live concurrent writer.  ``prune`` names child directories to
    skip (the memo store sweeps its own subtree).  Each root is swept
    at most once per process.
    """
    if not root:
        return 0
    key = os.path.abspath(root)
    if key in _SWEPT_ROOTS:
        return 0
    _SWEPT_ROOTS.add(key)
    if not os.path.isdir(key):
        return 0
    cutoff = (time.time() if now is None else now) - max_age
    removed = 0
    for dirpath, dirnames, filenames in os.walk(key):
        if dirpath == key and prune:
            dirnames[:] = [d for d in dirnames if d not in prune]
        for name in filenames:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(dirpath, name)
            try:
                if os.path.getmtime(path) <= cutoff:
                    os.remove(path)
                    removed += 1
            except OSError:
                continue
    return removed


def trace_key(source: str, options: CompilerOptions) -> str:
    """Content hash identifying one (source, options) compilation."""
    payload = json.dumps(
        [
            _FORMAT,
            __version__,
            hashlib.sha256(source.encode("utf-8")).hexdigest(),
            repr(options.fingerprint()),
        ],
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(slots=True)
class CacheStats:
    """Hit/miss/corrupt-drop/store counts for one cache handle.

    ``misses`` counts clean not-found lookups only; an entry dropped for
    being unreadable or structurally invalid counts under ``corrupt``
    instead, so the conservation law ``gets == hits + misses + corrupt``
    holds exactly (and the report-schema validator enforces it).
    """

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stores: int = 0
    #: Orphaned temp files removed by the startup janitor — outside
    #: the ``gets == hits + misses + corrupt`` conservation law.
    debris: int = 0

    @property
    def gets(self) -> int:
        """Total lookups: every ``load()`` ends as exactly one of
        hit / miss / corrupt-drop."""
        return self.hits + self.misses + self.corrupt

    def as_dict(self) -> dict:
        return {"gets": self.gets, "hits": self.hits,
                "misses": self.misses, "corrupt": self.corrupt,
                "stores": self.stores, "debris": self.debris}


class TraceCache:
    """A content-addressed trace cache rooted at one directory."""

    enabled = True

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CacheStats()
        # Startup janitor: clear crash debris left by killed writers.
        # The memo store (and the flow state store) sweep their own
        # subtrees, so prune them here to keep the counts disjoint.
        self.stats.debris = sweep_debris(root, prune=("memo", "flow"))

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".pkl")

    def load(self, key: str) -> RunResult | None:
        """The cached run for ``key``, or ``None`` (counted as a miss)."""
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, ValueError, KeyError):
            # Corrupt or stale entry: drop it and recompile.
            try:
                os.remove(path)
            except OSError:
                pass
            self.stats.corrupt += 1
            return None
        # A payload that unpickles but is not structurally a valid run
        # (wrong type, or a trace whose v2 invariants do not hold —
        # e.g. an entry written by a different layout that happens to
        # unpickle) is dropped the same way, never handed to the
        # timing model.
        ok = (
            isinstance(result, RunResult)
            and isinstance(result.trace, Trace)
        )
        if ok:
            try:
                result.trace.validate()
            except TraceError:
                ok = False
        if not ok:
            try:
                os.remove(path)
            except OSError:
                pass
            self.stats.corrupt += 1
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, result: RunResult) -> None:
        """Write one entry atomically (safe under concurrent writers)."""
        path = self.path_for(key)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
                # Flush to stable storage before the rename becomes
                # visible: a crash mid-write must never leave a torn
                # entry behind the final name.
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.remove(tmp_path)
            except OSError:
                pass
            raise
        self.stats.stores += 1


class NullTraceCache(TraceCache):
    """Disabled cache: every lookup misses, nothing is written."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(root="")

    def load(self, key: str) -> RunResult | None:
        return None

    def store(self, key: str, result: RunResult) -> None:
        pass


#: Shared disabled cache; safe to pass anywhere a cache is expected.
NULL_TRACE_CACHE = NullTraceCache()


def open_cache(
    cache_dir: str | None, no_cache: bool = False
) -> TraceCache:
    """Normalize CLI-style cache settings to a usable cache handle.

    ``no_cache=True`` (or ``cache_dir=None``) yields a fresh disabled
    cache; otherwise the directory is created lazily on first store.
    """
    if no_cache or cache_dir is None:
        return NullTraceCache()
    return TraceCache(cache_dir)

"""Fault-tolerant supervision for the execution engine.

The plain pool path in :mod:`repro.engine.executor` dies with the first
hung cell, OOM-killed worker, or ``BrokenProcessPool``.  This module
wraps the same group-level work units in a supervising loop that treats
those events as expected:

* **per-group wall-clock timeouts** — a group that outlives
  ``RetryPolicy.group_timeout`` is declared hung; the pool is killed and
  respawned, and only unfinished groups are requeued (innocent in-flight
  groups are *not* charged an attempt);
* **bounded retries with exponential backoff + jitter** — transient
  failures (crash, hang, corrupt payload) requeue the group until
  ``RetryPolicy.max_attempts`` worker attempts are spent; the jitter is
  a seeded hash, so schedules are reproducible;
* **``BrokenProcessPool`` recovery** — a dead worker kills the pool;
  every in-flight group is charged one ``crash`` attempt (the culprit is
  unknowable), the pool is respawned, and work continues;
* **graceful degradation to serial** — a group that exhausts its worker
  retry budget is re-run once in-process; only if that also fails is it
  marked ``failed``;
* **fail-fast classification** — deterministic errors
  (:class:`~repro.errors.InterpBudgetError` budget overruns,
  :class:`~repro.errors.ResourceLimitError` RSS ceilings, compiler
  errors) would fail identically on every retry, so they skip the
  ladder and fail immediately with a typed :class:`CellError`.

The degradation ladder, per group::

    worker attempt 1..max_attempts  →  one serial in-process rerun  →  failed
    (transient errors only; deterministic errors jump straight to failed)

Every outcome is a :class:`GroupOutcome` carrying a structured status —
``ok`` / ``retried`` / ``degraded`` / ``failed`` — plus the full attempt
history, which the executor stamps onto each
:class:`~repro.engine.executor.CellResult`.
"""

from __future__ import annotations

import heapq
import signal
import threading
import time
import zlib
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import InterpBudgetError, ReproError, ResourceLimitError
from ..obs.resource import max_rss_mb
from ..obs.trace import NULL_TRACER, Tracer
from .faults import NO_FAULTS, FaultPlan, InjectedFaultError

#: The four cell statuses, in "best first" order.
CELL_STATUSES = ("ok", "retried", "degraded", "failed")


def install_sigterm_handler() -> bool:
    """Make SIGTERM take the KeyboardInterrupt shutdown path.

    Container runtimes and CI cancelers send SIGTERM, whose default
    disposition kills the process without unwinding — orphaning pool
    workers and leaving temp files behind.  Re-raising it as
    :class:`KeyboardInterrupt` reuses the interrupt path that already
    works: ``run_supervised``'s ``finally`` kills the pool, atomic
    writers unlink their temp files, journals flush on close, and the
    CLI exits nonzero.

    Only the main thread may set signal handlers; returns ``False``
    (and changes nothing) elsewhere, so library users embedding the
    engine in worker threads are unaffected.
    """
    if threading.current_thread() is not threading.main_thread():
        return False

    def _handler(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:  # pragma: no cover - non-main interpreter thread
        return False
    return True

#: Error kinds the retry ladder treats as transient (worth retrying).
TRANSIENT_KINDS = frozenset({"crash", "hang", "corrupt", "unknown"})


@dataclass(frozen=True, slots=True)
class ResourceLimits:
    """Per-cell guardrails enforced inside the group runner.

    ``max_instructions`` bounds the functional execution (surfaced as
    :class:`~repro.errors.InterpBudgetError`); ``max_rss_mb`` bounds the
    process's peak resident set after the compile/run step (surfaced as
    :class:`~repro.errors.ResourceLimitError`).  Both default to off.
    """

    max_instructions: int | None = None
    max_rss_mb: float | None = None

    def check_rss(self) -> None:
        """Raise :class:`ResourceLimitError` if peak RSS exceeds the
        ceiling (no-op when unset or the platform can't report RSS)."""
        if self.max_rss_mb is None:
            return
        used_mb = max_rss_mb()
        if used_mb > self.max_rss_mb:
            raise ResourceLimitError("rss_mb", used_mb, self.max_rss_mb)


#: Shared "no ceilings" instance.
NO_LIMITS = ResourceLimits()


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the supervisor retries, times out, and degrades."""

    #: Worker attempts per group before degrading to serial.
    max_attempts: int = 3
    #: First backoff delay; doubles per attempt up to ``max_delay``.
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Fractional jitter added to each delay (0 = none, 0.5 = up to +50%).
    jitter: float = 0.5
    #: Wall-clock budget for one group attempt (None = never time out).
    group_timeout: float | None = 300.0
    #: Re-run a group once in-process after worker retries are spent.
    serial_fallback: bool = True
    #: Hard cap on pool respawns before the run gives up wholesale.
    max_pool_restarts: int = 8
    #: Seed for the deterministic backoff jitter.
    seed: int = 0
    limits: ResourceLimits = field(default_factory=lambda: NO_LIMITS)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.group_timeout is not None and self.group_timeout <= 0:
            raise ValueError("group_timeout must be positive or None")

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Delay before retry number ``attempt`` (1-based), with
        deterministic jitter derived from ``(seed, key, attempt)``."""
        delay = min(self.max_delay,
                    self.base_delay * (2.0 ** max(0, attempt - 1)))
        if self.jitter > 0:
            token = f"{self.seed}|{key}|{attempt}"
            frac = (zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF) / 2**32
            delay *= 1.0 + self.jitter * frac
        return delay


@dataclass(frozen=True, slots=True)
class CellError:
    """A typed, picklable description of one failed attempt."""

    kind: str       # crash | hang | corrupt | budget | rss | error | unknown
    message: str
    attempt: int
    where: str      # "worker" | "serial"

    @property
    def transient(self) -> bool:
        """Transient errors are retried; deterministic ones fail fast."""
        return self.kind in TRANSIENT_KINDS

    def as_dict(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "attempt": self.attempt, "where": self.where}


def classify_exception(exc: BaseException) -> str:
    """Map an exception from a group attempt to a :class:`CellError` kind."""
    if isinstance(exc, InjectedFaultError):
        return {"crash": "crash", "hang": "hang",
                "corrupt-result": "corrupt", "corrupt-cache": "corrupt",
                "error": "error"}.get(exc.kind, "error")
    if isinstance(exc, InterpBudgetError):
        return "budget"
    if isinstance(exc, ResourceLimitError):
        return "rss"
    if isinstance(exc, BrokenProcessPool):
        return "crash"
    if isinstance(exc, ReproError):
        return "error"
    return "unknown"


@dataclass(frozen=True, slots=True)
class AttemptRecord:
    """One failed attempt in a group's history."""

    attempt: int
    where: str
    kind: str
    message: str
    seconds: float

    def as_dict(self) -> dict:
        return {"attempt": self.attempt, "where": self.where,
                "kind": self.kind, "message": self.message,
                "seconds": round(self.seconds, 6)}


@dataclass(slots=True)
class GroupOutcome:
    """What supervision concluded about one compile group."""

    status: str                       # one of CELL_STATUSES
    results: list | None              # [(plan index, CellResult)] when not failed
    cached: bool
    attempts: int                     # total attempts consumed
    history: list[AttemptRecord]
    error: CellError | None = None    # final error, for failed groups
    #: observability payload shipped back by the successful worker
    #: attempt: {"spans": [...], "metrics": {...}} or None (serial runs
    #: record straight into the parent's tracer/registry instead)
    obs: dict | None = None


def split_group_payload(payload: tuple) -> tuple[list, bool, dict | None]:
    """Normalize a group payload to ``(results, cached, obs)``.

    Serial runners return the historical 2-tuple (their spans/metrics
    land directly in the parent's collectors); workers append the
    buffered observability payload as a third element.  Only call on a
    payload :func:`validate_group_payload` accepted.
    """
    if len(payload) == 2:
        results, cached = payload
        return results, cached, None
    results, cached, obs = payload
    return results, cached, obs


def validate_group_payload(payload, expected_indices: set[int]) -> str | None:
    """Structural check of a worker's group payload.

    Returns an error message when the payload is corrupt (wrong shape,
    wrong indices, or cell fields that cannot be real measurements), or
    ``None`` when it is safe to install.  This is the parent-side
    defense against half-transferred or bit-flipped results.

    Payloads are ``(results, cached)`` from serial runners or
    ``(results, cached, obs)`` from workers, where ``obs`` is ``None``
    or a dict of buffered spans/metrics (its content is advisory, so
    only its type is checked — a corrupt span never corrupts results).
    """
    if not isinstance(payload, tuple) or len(payload) not in (2, 3):
        return f"group payload has wrong shape: {type(payload).__name__}"
    if len(payload) == 3 and not (payload[2] is None
                                  or isinstance(payload[2], dict)):
        return "group payload obs must be a dict or None"
    results, cached = payload[0], payload[1]
    if not isinstance(cached, bool) or not isinstance(results, list):
        return "group payload has wrong field types"
    seen: set[int] = set()
    for item in results:
        if not isinstance(item, tuple) or len(item) != 2:
            return "group payload entry is not an (index, cell) pair"
        index, cell = item
        if not isinstance(index, int) or isinstance(index, bool):
            return "group payload index is not an int"
        seen.add(index)
        message = _validate_cell(cell)
        if message is not None:
            return f"cell {index}: {message}"
    if seen != expected_indices:
        return (f"group payload covers indices {sorted(seen)}, "
                f"expected {sorted(expected_indices)}")
    return None


def _validate_cell(cell) -> str | None:
    if type(cell).__name__ != "CellResult":
        return f"not a CellResult: {type(cell).__name__}"
    if not isinstance(cell.benchmark, str) or not isinstance(cell.machine, str):
        return "benchmark/machine must be strings"
    for name in ("instructions", "minor_cycles"):
        value = getattr(cell, name)
        if isinstance(value, bool) or not isinstance(value, int) or value < 0:
            return f"{name} must be a non-negative int, got {value!r}"
    for name in ("base_cycles", "parallelism", "seconds", "compile_seconds"):
        value = getattr(cell, name)
        if not isinstance(value, (int, float)) or value < 0 or value != value:
            return f"{name} must be a non-negative number, got {value!r}"
    if cell.status != "ok":
        return f"worker cells must arrive with status 'ok', got {cell.status!r}"
    return None


def failure_manifest(items) -> str | None:
    """One-line manifest of failed cells (``None`` when everything ran).

    ``items`` may be any objects with ``benchmark``, ``machine``,
    ``status`` and optionally ``error`` attributes (engine
    :class:`CellResult`\\ s or analysis ``SweepRow``\\ s).
    """
    lines = []
    for item in items:
        if getattr(item, "status", "ok") != "failed":
            continue
        error = getattr(item, "error", None)
        if isinstance(error, dict):
            detail = f"{error.get('kind', '?')}: {error.get('message', '')}"
        elif error:
            detail = str(error)
        else:
            detail = "unknown error"
        lines.append(f"{item.benchmark}@{item.machine} ({detail})")
    if not lines:
        return None
    return f"FAILED {len(lines)} cell(s): " + "; ".join(lines)


# ----------------------------------------------------------------------
# serial supervision (workers == 1)

def run_group_serial(
    key: str,
    serial_runner,
    policy: RetryPolicy,
    expected_indices: set[int] | None = None,
    tracer: Tracer = NULL_TRACER,
    validate=None,
) -> GroupOutcome:
    """Attempt one group in-process under the retry ladder.

    ``serial_runner(attempt)`` performs the work and returns
    ``(results, cached)`` (a trailing observability element is
    tolerated); exceptions are classified and transient ones retried
    with (blocking) backoff.  ``expected_indices`` additionally
    subjects each payload to the ``validate`` hook — by default
    :func:`validate_group_payload`; workloads whose results are not
    CellResult-shaped (the workflow engine's nodes) pass their own
    ``validate(payload, expected_indices) -> str | None`` — and a
    corrupt payload counts as a failed transient attempt.  There is no
    separate degradation step — the run is already serial — so
    exhausting the budget means ``failed``.  ``tracer`` receives one
    ``retry.backoff`` span per backoff wait and one ``attempt.failed``
    span per failed attempt.
    """
    if validate is None:
        validate = validate_group_payload
    history: list[AttemptRecord] = []
    attempt = 0
    while attempt < policy.max_attempts:
        attempt += 1
        start = time.perf_counter()
        try:
            payload = serial_runner(attempt)
        except Exception as exc:
            error = CellError(classify_exception(exc), str(exc),
                              attempt, "serial")
        else:
            message = None
            if expected_indices is not None:
                message = validate(payload, expected_indices)
            elif not (isinstance(payload, tuple)
                      and len(payload) in (2, 3)):
                message = "group payload has wrong shape"
            if message is None:
                results, cached, obs = split_group_payload(payload)
                status = "ok" if attempt == 1 else "retried"
                return GroupOutcome(status, results, cached, attempt,
                                    history, obs=obs)
            error = CellError("corrupt", message, attempt, "serial")
        seconds = time.perf_counter() - start
        history.append(AttemptRecord(
            attempt, "serial", error.kind, error.message, seconds,
        ))
        if tracer.enabled:
            now = time.monotonic_ns()
            tracer.record("attempt.failed", "resilience",
                          now - int(seconds * 1e9), int(seconds * 1e9),
                          group=key, attempt=attempt, kind=error.kind)
        if not error.transient or attempt >= policy.max_attempts:
            return GroupOutcome("failed", None, False, attempt,
                                history, error)
        delay = policy.backoff_delay(attempt, key)
        with tracer.span("retry.backoff", cat="resilience", group=key,
                         attempt=attempt):
            time.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# pool supervision (workers > 1)

@dataclass(slots=True)
class _Group:
    """Mutable supervision state for one compile group."""

    idx: int                 # position in the group_args list
    key: str                 # human-readable identity (for jitter/manifest)
    payload_base: tuple      # (benchmark, options, machine_cells, observe)
    indices: set[int]        # plan indices this group must produce
    attempts: int = 0        # worker attempts charged
    history: list = field(default_factory=list)
    outcome: GroupOutcome | None = None


@dataclass(slots=True)
class SupervisionStats:
    """Pool-level accounting for the engine report."""

    pool_restarts: int = 0
    worker_retries: int = 0


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down hard: cancel queued work, terminate workers.

    Termination reaches into ``_processes`` (stable across CPython 3.9+)
    because a hung worker never honours a cooperative shutdown; the
    try/except keeps us safe if the internals ever move.
    """
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # pragma: no cover - defensive
        pass
    procs_attr = getattr(pool, "_processes", None)
    procs = list(procs_attr.values()) if isinstance(procs_attr, dict) else []
    for proc in procs:
        try:
            proc.terminate()
        except Exception:  # pragma: no cover - already dead
            pass
    for proc in procs:
        try:
            proc.join(timeout=5)
        except Exception:  # pragma: no cover - defensive
            pass


def run_supervised(
    groups: "list[tuple[str, tuple, set[int]]]",
    *,
    workers: int,
    task,
    make_payload,
    serial_runner,
    policy: RetryPolicy,
    faults: FaultPlan = NO_FAULTS,
    stats: SupervisionStats | None = None,
    tracer: Tracer = NULL_TRACER,
    progress=None,
    validate=None,
) -> list[GroupOutcome]:
    """Run compile groups across a supervised process pool.

    Parameters
    ----------
    groups:
        ``(key, payload_base, plan_indices)`` per group, where ``key``
        is a stable human-readable identity and ``payload_base`` the
        work description handed to ``make_payload``.
    task:
        The picklable pool entry point.
    make_payload:
        ``make_payload(payload_base, attempt) -> payload`` builds the
        argument ``task`` receives (the attempt number rides along so
        fault firing stays deterministic without shared state).
    serial_runner:
        ``serial_runner(payload_base, attempt) -> (results, cached)``;
        the in-process degradation step.
    policy / faults:
        Retry ladder configuration and the fault plan (threaded through
        payloads so workers inject deterministically).
    tracer:
        Receives resilience spans — ``retry.backoff``, ``pool.respawn``,
        ``degraded.rerun``, ``group.timeout`` and ``attempt.failed`` —
        so the supervision ladder is visible in the Perfetto timeline.
    progress:
        Optional callable ``progress(group_key, outcome, n_cells)``
        invoked as each group settles (drives the ``--live`` progress
        line).
    validate:
        ``validate(payload, expected_indices) -> str | None`` replaces
        the default :func:`validate_group_payload` structural check for
        workloads whose results are not CellResult-shaped (the workflow
        engine's nodes).

    Returns one :class:`GroupOutcome` per input group, in input order.
    """
    del faults  # faults travel inside make_payload; kept for signature clarity
    if validate is None:
        validate = validate_group_payload
    stats = stats if stats is not None else SupervisionStats()
    states = [_Group(i, key, base, set(indices))
              for i, (key, base, indices) in enumerate(groups)]
    pending: deque[_Group] = deque(states)
    waiting: list = []      # backoff heap: (ready, seq, group, entered_ns)
    inflight: dict = {}                             # future -> (group, t0)
    seq = 0
    pool = ProcessPoolExecutor(max_workers=workers)

    def finish(group: _Group, outcome: GroupOutcome) -> None:
        group.outcome = outcome
        if progress is not None:
            progress(group.key, outcome, len(group.indices))

    def respawn_pool() -> ProcessPoolExecutor:
        with tracer.span("pool.respawn", cat="resilience",
                         restart=stats.pool_restarts):
            _kill_pool(pool)
            return ProcessPoolExecutor(max_workers=workers)

    def degrade_or_fail(group: _Group, error: CellError) -> None:
        """The bottom of the worker ladder: serial rerun, then failed."""
        if not (error.transient and policy.serial_fallback):
            finish(group, GroupOutcome(
                "failed", None, False, group.attempts,
                group.history, error,
            ))
            return
        attempt = group.attempts + 1
        start = time.perf_counter()
        with tracer.span("degraded.rerun", cat="resilience",
                         group=group.key, attempt=attempt):
            try:
                payload = serial_runner(group.payload_base, attempt)
            except Exception as exc:
                final = CellError(classify_exception(exc), str(exc),
                                  attempt, "serial")
            else:
                message = validate(payload, group.indices)
                if message is None:
                    results, cached, obs = split_group_payload(payload)
                    finish(group, GroupOutcome(
                        "degraded", results, cached, attempt,
                        group.history, obs=obs,
                    ))
                    return
                final = CellError("corrupt", message, attempt, "serial")
        group.history.append(AttemptRecord(
            attempt, "serial", final.kind, final.message,
            time.perf_counter() - start,
        ))
        finish(group, GroupOutcome(
            "failed", None, False, attempt, group.history, final,
        ))

    def dispose_failure(group: _Group, error: CellError,
                        seconds: float) -> None:
        nonlocal seq
        group.history.append(AttemptRecord(
            error.attempt, error.where, error.kind, error.message, seconds,
        ))
        stats.worker_retries += 1
        if tracer.enabled:
            now_ns = time.monotonic_ns()
            tracer.record("attempt.failed", "resilience",
                          now_ns - int(seconds * 1e9), int(seconds * 1e9),
                          group=group.key, attempt=error.attempt,
                          kind=error.kind, where=error.where)
        if error.transient and group.attempts < policy.max_attempts:
            ready = time.monotonic() + policy.backoff_delay(
                group.attempts, group.key,
            )
            seq += 1
            heapq.heappush(waiting, (ready, seq, group,
                                     time.monotonic_ns()))
        else:
            degrade_or_fail(group, error)

    def give_up_all(message: str) -> None:
        """Pool-restart budget exhausted: fail every unfinished group."""
        leftovers = ([g for _, _, g, _ in waiting] + list(pending)
                     + [g for g, _ in inflight.values()])
        for group in leftovers:
            if group.outcome is None:
                finish(group, GroupOutcome(
                    "failed", None, False, group.attempts, group.history,
                    CellError("crash", message, group.attempts, "worker"),
                ))
        waiting.clear()
        pending.clear()
        inflight.clear()

    try:
        while pending or waiting or inflight:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, _, group, entered_ns = heapq.heappop(waiting)
                if tracer.enabled:
                    waited = time.monotonic_ns() - entered_ns
                    tracer.record("retry.backoff", "resilience",
                                  entered_ns, waited, group=group.key,
                                  attempt=group.attempts)
                pending.append(group)

            # Submit up to the pool's width; more would blur the
            # submit-to-start gap the hang timeout is measured over.
            broken = False
            while pending and len(inflight) < workers:
                group = pending.popleft()
                group.attempts += 1
                payload = make_payload(group.payload_base, group.attempts)
                try:
                    future = pool.submit(task, payload)
                except (BrokenProcessPool, RuntimeError):
                    group.attempts -= 1
                    pending.appendleft(group)
                    broken = True
                    break
                inflight[future] = (group, time.monotonic())

            if not inflight:
                if broken:
                    stats.pool_restarts += 1
                    if stats.pool_restarts > policy.max_pool_restarts:
                        give_up_all("pool restart budget exhausted")
                        break
                    pool = respawn_pool()
                    continue
                if waiting:
                    time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue

            timeout = None
            if policy.group_timeout is not None:
                earliest = min(t0 for _, t0 in inflight.values())
                timeout = max(0.0, earliest + policy.group_timeout
                              - time.monotonic())
            if waiting:
                until_backoff = max(0.0, waiting[0][0] - time.monotonic())
                timeout = until_backoff if timeout is None \
                    else min(timeout, until_backoff)

            done, _ = wait(set(inflight), timeout=timeout,
                           return_when=FIRST_COMPLETED)

            for future in done:
                group, t0 = inflight.pop(future)
                seconds = time.monotonic() - t0
                try:
                    payload = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    dispose_failure(group, CellError(
                        "crash", str(exc) or "worker process died",
                        group.attempts, "worker",
                    ), seconds)
                    continue
                except Exception as exc:
                    dispose_failure(group, CellError(
                        classify_exception(exc), str(exc),
                        group.attempts, "worker",
                    ), seconds)
                    continue
                message = validate(payload, group.indices)
                if message is not None:
                    dispose_failure(group, CellError(
                        "corrupt", message, group.attempts, "worker",
                    ), seconds)
                    continue
                results, cached, obs = split_group_payload(payload)
                status = "ok" if group.attempts == 1 else "retried"
                finish(group, GroupOutcome(
                    status, results, cached, group.attempts, group.history,
                    obs=obs,
                ))

            # Hang detection: any group past its wall-clock budget takes
            # the pool down with it (a running task cannot be cancelled).
            hung: list = []
            if policy.group_timeout is not None:
                now = time.monotonic()
                for future, (group, t0) in list(inflight.items()):
                    if now - t0 > policy.group_timeout:
                        hung.append((future, group, now - t0))
            if hung:
                broken = True
                for future, group, seconds in hung:
                    del inflight[future]
                    if tracer.enabled:
                        now_ns = time.monotonic_ns()
                        tracer.record(
                            "group.timeout", "resilience",
                            now_ns - int(seconds * 1e9),
                            int(seconds * 1e9), group=group.key,
                            attempt=group.attempts,
                        )
                    dispose_failure(group, CellError(
                        "hang",
                        f"group exceeded {policy.group_timeout:.1f}s "
                        "wall-clock budget",
                        group.attempts, "worker",
                    ), seconds)

            if broken:
                # Innocent in-flight groups lose their results but not
                # an attempt; requeue them ahead of new submissions.
                for future, (group, _) in list(inflight.items()):
                    group.attempts -= 1
                    pending.appendleft(group)
                inflight.clear()
                stats.pool_restarts += 1
                if stats.pool_restarts > policy.max_pool_restarts:
                    give_up_all("pool restart budget exhausted")
                    break
                pool = respawn_pool()
    finally:
        # Interrupt/shutdown path: never leak worker processes.
        _kill_pool(pool)

    missing = [g for g in states if g.outcome is None]
    assert not missing, f"supervision lost groups: {[g.key for g in missing]}"
    return [g.outcome for g in states]

"""Parallel execution engine for benchmark x machine x options grids.

The paper's results are a grid of (benchmark, CompilerOptions,
MachineConfig) measurements.  This package turns such a grid into an
explicit :class:`~repro.engine.plan.Plan` of cells and executes it:

* serially (``workers=1``) — bit-identical to looping inline, or
* across a :class:`concurrent.futures.ProcessPoolExecutor`, with cells
  grouped by compile unit so each trace is built once, and

with an optional content-addressed on-disk cache
(:class:`~repro.engine.cache.TraceCache`) keyed by source hash + option
fingerprint + package version, so recompilation is skipped across runs
and across processes.

Everything the engine returns (cell results, stall breakdowns, engine
statistics) is picklable, and results are reassembled in plan order, so
parallel sweeps are bit-identical to serial ones.
"""

from .cache import (
    DEFAULT_CACHE_DIR,
    NULL_TRACE_CACHE,
    CacheStats,
    TraceCache,
    open_cache,
    trace_key,
)
from .executor import (
    CellResult,
    EngineReport,
    EngineResult,
    execute,
    prime_runs,
)
from .faults import NO_FAULTS, FaultPlan, FaultSpec, InjectedFaultError
from .plan import Cell, Plan, plan_sweep
from .resilience import (
    CELL_STATUSES,
    CellError,
    ResourceLimits,
    RetryPolicy,
    failure_manifest,
    install_sigterm_handler,
)

__all__ = [
    "CELL_STATUSES",
    "Cell",
    "CellError",
    "CellResult",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "EngineReport",
    "EngineResult",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "NO_FAULTS",
    "NULL_TRACE_CACHE",
    "Plan",
    "ResourceLimits",
    "RetryPolicy",
    "TraceCache",
    "execute",
    "failure_manifest",
    "install_sigterm_handler",
    "open_cache",
    "plan_sweep",
    "prime_runs",
    "trace_key",
]

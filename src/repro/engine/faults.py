"""Deterministic fault injection for the execution engine.

The resilience layer (:mod:`repro.engine.resilience`) is only credible
if worker crashes, hangs, corrupt payloads and cache corruption can be
produced on demand, deterministically, in CI.  A :class:`FaultPlan`
describes *which* cells fail and *how often*; the engine threads the
plan into every worker, so the decision to fire is a pure function of
``(kind, benchmark, machine, attempt, seed)`` — no shared mutable
state, no wall clock, identical across processes and re-runs.

Syntax (the ``REPRO_FAULTS`` environment variable, or
:meth:`FaultPlan.parse`)::

    plan  = entry { (',' | ';') entry }
    entry = spec | 'seed=' INT | 'hang=' SECONDS
    spec  = kind '@' benchmark [ '/' machine ] [ '#' count ] [ '~' prob ]

with ``benchmark``/``machine`` either a name or ``*`` (any), ``count``
the number of attempts that fire (default ``1`` — the first attempt
fails and the retry succeeds; ``inf`` never stops), and ``prob`` a
seeded pseudo-random gate in ``[0, 1]`` for randomized-but-reproducible
chaos runs.  Machine names are matched loosely (``superscalar:4`` ==
``SuperScalar-4``).

Kinds:

* ``crash``          — the worker process dies via ``os._exit`` (in the
  parent process the same spec raises :class:`InjectedFaultError`);
* ``hang``           — the worker blocks until the supervisor's
  per-group timeout kills the pool (bounded by ``hang=`` seconds as a
  backstop);
* ``corrupt-result`` — the worker returns a structurally invalid
  :class:`~repro.engine.executor.CellResult` payload;
* ``corrupt-cache``  — the cache entry the group just wrote is
  truncated in place (a simulated partial write);
* ``error``          — a deterministic in-cell exception, classified as
  non-transient by the retry policy (fails fast, no retries);
* ``kill``           — the *parent* process dies via ``SIGKILL`` at a
  workflow-node boundary (:mod:`repro.flow` fires it after journaling
  the matching node; the benchmark slot names a node or its 1-based
  completion ordinal);
* ``torn-write``     — a workflow checkpoint file is truncated mid-write
  (same site grammar as ``kill``); the flow state store's structural
  validation must drop the entry and recompute on resume.

Examples::

    REPRO_FAULTS='crash@whet'                  # first whet attempt dies
    REPRO_FAULTS='hang@linpack/base,hang=0.5'  # linpack-on-base blocks
    REPRO_FAULTS='corrupt-result@stanford#2'   # two corrupt attempts
    REPRO_FAULTS='crash@*~0.25,seed=7'         # 25% of groups, seeded
    REPRO_FAULTS='kill@3'                      # SIGKILL after node 3
    REPRO_FAULTS='torn-write@5'                # tear node 5's checkpoint
"""

from __future__ import annotations

import os
import re
import signal
import time
import zlib
from dataclasses import dataclass, replace

from ..errors import ReproError

#: Recognized fault kinds, in documentation order.
FAULT_KINDS = ("crash", "hang", "corrupt-result", "corrupt-cache", "error",
               "kill", "torn-write")

#: Environment variable holding the default fault plan.
ENV_VAR = "REPRO_FAULTS"

#: Exit status an injected worker crash dies with (distinctive in logs).
FAULT_EXIT_CODE = 87

#: A crash/hang fault keeps firing forever with this count.
INFINITE = 1 << 30

_SPEC_RE = re.compile(
    r"^(?P<kind>[a-z-]+)@(?P<bench>[^/#~]+)"
    r"(?:/(?P<machine>[^#~]+))?"
    r"(?:#(?P<count>\d+|inf))?"
    r"(?:~(?P<prob>[0-9.]+))?$"
)


class InjectedFaultError(ReproError):
    """An injected fault firing in a context where it must raise.

    ``kind`` is the fault kind that fired; ``site`` names the cell.
    """

    def __init__(self, kind: str, site: str) -> None:
        super().__init__(f"injected {kind} fault at {site}")
        self.kind = kind
        self.site = site

    def __reduce__(self):  # keep picklable across process boundaries
        return (InjectedFaultError, (self.kind, self.site))


def _normalize_machine(name: str) -> str:
    """Loose machine-name form: lowercase, ``:`` and ``_`` become ``-``."""
    return name.strip().lower().replace(":", "-").replace("_", "-")


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One parsed fault directive."""

    kind: str
    benchmark: str = "*"
    machine: str = "*"
    count: int = 1
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} "
                f"(choose from {', '.join(FAULT_KINDS)})"
            )
        if self.count < 0:
            raise ValueError("fault count must be >= 0")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")

    def matches(self, kind: str, benchmark: str, machine: str) -> bool:
        if kind != self.kind:
            return False
        if self.benchmark != "*" and self.benchmark != benchmark:
            return False
        if self.machine != "*" and \
                _normalize_machine(self.machine) != _normalize_machine(machine):
            return False
        return True


def _parse_spec(token: str) -> FaultSpec:
    match = _SPEC_RE.match(token)
    if match is None:
        raise ValueError(
            f"malformed fault spec {token!r} "
            "(expected kind@benchmark[/machine][#count][~prob])"
        )
    count = match.group("count")
    return FaultSpec(
        kind=match.group("kind"),
        benchmark=match.group("bench").strip(),
        machine=(match.group("machine") or "*").strip(),
        count=INFINITE if count == "inf" else int(count or 1),
        probability=float(match.group("prob") or 1.0),
    )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable, picklable set of fault directives.

    The empty plan (:data:`NO_FAULTS`) is falsy and free to thread
    everywhere; every query against it answers "don't fire".
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    #: Backstop for ``hang`` faults: the worker unblocks (and raises)
    #: after this long even if no supervisor ever kills it.
    hang_seconds: float = 600.0

    def __bool__(self) -> bool:
        return bool(self.specs)

    @classmethod
    def parse(cls, text: str | None) -> "FaultPlan":
        """Parse a ``REPRO_FAULTS``-syntax plan (``None``/empty → no-op)."""
        if not text or not text.strip():
            return cls()
        specs: list[FaultSpec] = []
        seed = 0
        hang_seconds = 600.0
        for token in re.split(r"[;,]", text):
            token = token.strip()
            if not token:
                continue
            if token.startswith("seed="):
                seed = int(token[len("seed="):])
            elif token.startswith("hang="):
                hang_seconds = float(token[len("hang="):])
            else:
                specs.append(_parse_spec(token))
        return cls(specs=tuple(specs), seed=seed,
                   hang_seconds=hang_seconds)

    @classmethod
    def from_env(cls, environ=None) -> "FaultPlan":
        """The plan named by ``$REPRO_FAULTS`` (empty plan when unset)."""
        env = os.environ if environ is None else environ
        return cls.parse(env.get(ENV_VAR))

    # ------------------------------------------------------------------
    # firing decisions

    def _gate(self, spec: FaultSpec, kind: str, benchmark: str,
              machine: str, attempt: int) -> bool:
        if spec.probability >= 1.0:
            return True
        token = f"{self.seed}|{kind}|{benchmark}|{machine}|{attempt}"
        draw = (zlib.crc32(token.encode("utf-8")) & 0xFFFFFFFF) / 2**32
        return draw < spec.probability

    def should_fire(self, kind: str, benchmark: str, machine: str,
                    attempt: int) -> bool:
        """True when a spec covers this (cell, attempt) decision point.

        Pure and deterministic: the same arguments (plus the plan's
        seed) always answer the same way, in any process.
        """
        for spec in self.specs:
            if not spec.matches(kind, benchmark, machine):
                continue
            if attempt > spec.count:
                continue
            if self._gate(spec, kind, benchmark, machine, attempt):
                return True
        return False

    # ------------------------------------------------------------------
    # firing actions (called from the engine's group runner)

    def fire_group_faults(self, benchmark: str, machine_names: list[str],
                          attempt: int, in_worker: bool) -> None:
        """Trigger crash/hang/error faults at group entry, if any match.

        In a worker process a crash really kills the process and a hang
        really blocks; in the parent (serial path, degradation rerun)
        both raise :class:`InjectedFaultError` instead, because killing
        or blocking the supervisor would defeat supervision.
        """
        for kind in ("crash", "hang", "error"):
            for machine in machine_names:
                if not self.should_fire(kind, benchmark, machine, attempt):
                    continue
                site = f"{benchmark}/{machine}"
                if kind == "crash" and in_worker:
                    os._exit(FAULT_EXIT_CODE)
                if kind == "hang" and in_worker:
                    deadline = time.monotonic() + self.hang_seconds
                    while time.monotonic() < deadline:
                        time.sleep(0.05)
                raise InjectedFaultError(kind, site)

    def maybe_corrupt_cell(self, cell, attempt: int):
        """Return ``cell`` or a structurally corrupted copy of it.

        The corruption (a negative instruction count) survives pickling
        but fails the parent's payload validation, exactly like a
        half-transferred or bit-flipped result would.
        """
        if self.should_fire("corrupt-result", cell.benchmark, cell.machine,
                            attempt):
            return replace(cell, instructions=-1)
        return cell

    # ------------------------------------------------------------------
    # workflow-node faults (fired by repro.flow at node boundaries)

    def _node_matches(self, kind: str, node: str, ordinal: int) -> bool:
        """True when a ``kind`` spec covers this node boundary.

        The spec's benchmark slot names either the node (exact match),
        its 1-based completion ordinal, or ``*`` (every boundary); the
        probability gate uses the ordinal as the attempt token, so
        randomized chaos runs stay reproducible.
        """
        for spec in self.specs:
            if spec.kind != kind:
                continue
            if spec.benchmark not in ("*", node, str(ordinal)):
                continue
            if ordinal > spec.count and spec.benchmark == "*":
                continue
            if self._gate(spec, kind, node, "*", ordinal):
                return True
        return False

    def fire_kill(self, node: str, ordinal: int, *,
                  kill_action=None) -> None:
        """SIGKILL the calling process at a node boundary, if matched.

        ``kill_action`` replaces the real SIGKILL for in-process tests;
        the default is a genuine, uncatchable ``os.kill``.
        """
        if not self._node_matches("kill", node, ordinal):
            return
        if kill_action is not None:
            kill_action(node, ordinal)
            return
        os.kill(os.getpid(), signal.SIGKILL)

    def maybe_tear_checkpoint(self, path: str, node: str,
                              ordinal: int) -> bool:
        """Truncate the checkpoint file at ``path`` (a simulated torn
        write) when a ``torn-write`` spec matches this node boundary;
        returns True when the file was torn."""
        if not self._node_matches("torn-write", node, ordinal):
            return False
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            return False
        return True

    def maybe_corrupt_cache(self, cache, key: str, benchmark: str,
                            attempt: int) -> None:
        """Truncate the cache entry for ``key`` (a simulated partial
        write); the cache's structural validation must treat the entry
        as a miss on the next load."""
        if not getattr(cache, "enabled", False):
            return
        if not self.should_fire("corrupt-cache", benchmark, "*", attempt):
            return
        path = cache.path_for(key)
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:
            pass


#: Shared empty plan; safe to pass anywhere a plan is expected.
NO_FAULTS = FaultPlan()

#!/usr/bin/env python
"""Chaos-test crash resume: kill a flow suite run, resume, diff.

For each chosen kill point the harness runs ``repro suite --flow`` in a
subprocess with a ``kill@<ordinal>`` fault (the engine SIGKILLs itself
right after journaling that node), resumes the run with ``repro
resume``, and diffs the resumed JSONL report against an uninterrupted
baseline with ``repro diff --max-regression 0`` — any gated metric
difference fails the harness.  One extra scenario tears a checkpoint
mid-write (``torn-write@<ordinal>``) before the kill, proving that
resume re-executes a node whose journal entry says "complete" but whose
checkpoint did not survive.

The run journals are also parsed directly to assert the resume
re-executed *only* nodes without a valid checkpoint: for a pure kill,
the set of nodes executed after ``flow_resume`` must be disjoint from
the set journaled complete before it; for a torn write, exactly the
torn node may appear in both.

Usage::

    python scripts/resume_smoke.py [--benchmarks a,b] [--machines ...]
        [--kill-every N] [--workdir DIR] [--manifest PATH] [--keep]

Exits 0 when every scenario holds, 1 on any mismatch.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

SIGKILL_CODES = (-9, 137)


def repro(args, *, workdir):
    """Run ``python -m repro <args>`` with src/ on the path."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        cwd=workdir, env=env, capture_output=True, text=True,
    )


def journal_sets(journal_file):
    """(completed-before-resume, executed-after-resume) node-name sets."""
    from repro.flow import read_journal

    events = read_journal(journal_file)
    before: set[str] = set()
    after: set[str] = set()
    seen_resume = False
    for event in events:
        if event.get("event") == "flow_resume":
            seen_resume = True
        elif event.get("event") == "node_done":
            if event.get("status") != "executed":
                continue
            (after if seen_resume else before).add(event["node"])
    return before, after


def run_scenario(label, faults, *, suite_args, workdir, baseline,
                 allowed_overlap=frozenset()):
    """Kill/tear a flow run, resume it, verify bit-identity. -> dict"""
    cache = os.path.join(workdir, f"cache-{label}")
    report = os.path.join(workdir, f"resumed-{label}.jsonl")
    run_id = f"chaos-{label}"
    record = {"label": label, "faults": faults, "ok": False}

    killed = repro(
        ["suite", "--flow", *suite_args, "--cache-dir", cache,
         "--run-id", run_id, "--faults", faults],
        workdir=workdir,
    )
    if killed.returncode not in SIGKILL_CODES:
        record["error"] = (f"expected SIGKILL, got rc={killed.returncode}: "
                           f"{killed.stderr.strip()[:300]}")
        return record
    record["killed_rc"] = killed.returncode

    resumed = repro(
        ["resume", run_id, "--cache-dir", cache, "--report", report],
        workdir=workdir,
    )
    if resumed.returncode != 0:
        record["error"] = (f"resume failed rc={resumed.returncode}: "
                           f"{resumed.stderr.strip()[:300]}")
        return record

    journal = os.path.join(cache, "flow", "runs", f"{run_id}.jsonl")
    record["journal"] = journal
    before, after = journal_sets(journal)
    overlap = before & after
    record["completed_before_kill"] = sorted(before)
    record["executed_on_resume"] = sorted(after)
    if not overlap <= set(allowed_overlap):
        record["error"] = (f"resume re-executed journaled-complete "
                           f"node(s) {sorted(overlap - set(allowed_overlap))}")
        return record
    if allowed_overlap and not overlap:
        record["error"] = (f"expected torn node(s) {sorted(allowed_overlap)} "
                           "to re-execute, but none did")
        return record

    diff = repro(
        ["diff", baseline, report,
         "--max-regression", "0", "--seconds-tolerance", "1000"],
        workdir=workdir,
    )
    record["diff_rc"] = diff.returncode
    if diff.returncode != 0:
        record["error"] = ("resumed report differs from clean baseline:\n"
                           + diff.stdout.strip()[:2000])
        return record
    record["ok"] = True
    return record


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default="linpack,whet",
                        help="comma-separated benchmark names")
    parser.add_argument("--machines", nargs="+",
                        default=["superscalar:4", "superscalar:8"],
                        help="machine preset specs")
    parser.add_argument("--kill-every", type=int, default=2, metavar="N",
                        help="kill at every Nth node boundary (default 2)")
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    parser.add_argument("--manifest", default=None, metavar="PATH",
                        help="write a JSON manifest of every scenario")
    parser.add_argument("--keep", action="store_true",
                        help="keep the scratch directory on success")
    args = parser.parse_args(argv)

    workdir = args.workdir or tempfile.mkdtemp(prefix="resume-smoke-")
    os.makedirs(workdir, exist_ok=True)
    suite_args = ["--benchmarks", *args.benchmarks.split(","),
                  "--machines", *args.machines]
    baseline = os.path.join(workdir, "clean.jsonl")

    clean = repro(
        ["suite", "--flow", *suite_args,
         "--cache-dir", os.path.join(workdir, "cache-clean"),
         "--run-id", "clean", "--report", baseline],
        workdir=workdir,
    )
    if clean.returncode != 0:
        print("baseline flow run failed:", file=sys.stderr)
        sys.stderr.write(clean.stderr)
        return 1
    before, after = journal_sets(
        os.path.join(workdir, "cache-clean", "flow", "runs", "clean.jsonl"))
    total = len(before | after)
    print(f"baseline: {total} nodes -> {baseline}")

    scenarios = []
    for ordinal in range(1, total + 1, max(1, args.kill_every)):
        scenarios.append((f"kill{ordinal}", f"kill@{ordinal}", frozenset()))
    if total >= 2:
        # Tear the first node's checkpoint, then die two nodes later:
        # the journal claims node 1 completed, but its checkpoint is
        # truncated, so resume must recompute it (and only it) among
        # the pre-kill nodes.
        kill_at = min(total, 3)
        # Node order in the journal is execution order; ordinal 1 is
        # the first node_done event.
        first_node = None
        from repro.flow import read_journal

        for event in read_journal(os.path.join(
                workdir, "cache-clean", "flow", "runs", "clean.jsonl")):
            if event.get("event") == "node_done":
                first_node = event["node"]
                break
        scenarios.append(("torn", f"torn-write@1,kill@{kill_at}",
                          frozenset([first_node])))

    results = []
    failures = 0
    for label, faults, allowed in scenarios:
        record = run_scenario(label, faults, suite_args=suite_args,
                              workdir=workdir, baseline=baseline,
                              allowed_overlap=allowed)
        results.append(record)
        status = "ok" if record["ok"] else "FAIL"
        detail = "" if record["ok"] else f" -- {record.get('error', '?')}"
        print(f"{label:8s} [{faults}] {status}{detail}")
        if not record["ok"]:
            failures += 1

    manifest = {
        "workdir": workdir,
        "benchmarks": args.benchmarks,
        "machines": args.machines,
        "nodes": total,
        "scenarios": results,
        "failures": failures,
    }
    if args.manifest:
        parent = os.path.dirname(args.manifest)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        print(f"manifest -> {args.manifest}")

    if failures:
        print(f"FAIL: {failures}/{len(results)} scenario(s) diverged "
              f"(scratch kept at {workdir})", file=sys.stderr)
        return 1
    print(f"all {len(results)} scenarios bit-identical after resume")
    if not args.keep and args.workdir is None:
        shutil.rmtree(workdir, ignore_errors=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Validate a JSONL run report against the repro.obs event schema.

Usage: python scripts/check_report_schema.py results/run_report.jsonl [...]

All schema knowledge (event names, required fields, conservation laws)
lives in ``src/repro/obs/schema.py`` — one shared stdlib-only module.
This script loads it **by file path**, so CI can validate a report
without installing the package, and ``tests/test_obs_report.py`` pins
the re-exported schema against ``repro.obs.recorder.EVENT_SCHEMA`` so
the emitters and the validator can never drift.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

_SCHEMA_PATH = (Path(__file__).resolve().parent.parent
                / "src" / "repro" / "obs" / "schema.py")


def _load_schema():
    spec = importlib.util.spec_from_file_location("_repro_obs_schema",
                                                  _SCHEMA_PATH)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_schema = _load_schema()

# Re-exports: everything callers and tests historically imported from
# this script resolves to the shared module's single copy.
SCHEMA_VERSION = _schema.SCHEMA_VERSION
EVENT_SCHEMA = _schema.EVENT_SCHEMA
STALL_CAUSES = _schema.STALL_CAUSES
CELL_STATUSES = _schema.CELL_STATUSES
check_replay = _schema.check_replay
check_stalls = _schema.check_stalls
check_history = _schema.check_history
check_span = _schema.check_span
check_resource = _schema.check_resource
check_histogram = _schema.check_histogram
check_metrics = _schema.check_metrics
check_event = _schema.check_event
check_file = _schema.check_file


def main(argv: list[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[2], file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        errors = check_file(path)
        if errors:
            failed = True
            for message in errors:
                print(f"{path}: {message}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

#!/usr/bin/env python
"""Benchmark the simulator: interpreter and timing-replay throughput.

Measures, on a benchmarks x machines grid:

1. ``interp``  — functional interpreter throughput (trace recording),
2. ``direct``  — timing replay with memoization disabled: the
   per-instruction reference path, equivalent to the pre-memoization
   simulator (every dynamic instruction re-walked per machine),
3. ``cold``    — memoized replay from scratch: plan construction plus
   first-touch memo misses included (fresh ``ReplayCore`` per cell,
   plans reset beforehand), i.e. what a first ``simulate()`` costs,
4. ``warm``    — memoized replay in the steady state: a second
   ``ReplayCore.run()`` on already-populated memo tables, i.e. what
   every later replay of the same trace costs (under the NumPy backend
   this is the vectorized block-replay kernel),
5. ``vectorized`` (NumPy backend only) — the raw structure-of-arrays
   kernel rerun on resolved cores, without the ``run()`` dispatch,
6. ``warm_persistent`` — a fresh ``ReplayCore`` per cell per pass that
   adopts its memo tables from the persistent on-disk store
   (pickle load + validation + adoption + replay): what a brand-new
   process pays when the cache directory is already warm.

Each mode reports dynamic instructions per second; the headline number
is ``speedup.warm_vs_direct`` — the steady-state grid speedup of the
memoized path over the per-instruction path (``warm`` is also the
mode the regression gate watches).  With ``--check`` the memoized,
steady-state/vectorized, and persistent-memo-adopted grids are all
verified bit-identical (minor cycles and full stall breakdowns)
against the direct path before timing.  The document also carries a
per-benchmark warm-throughput breakdown and the active replay backend.

Results go to ``BENCH_sim.json`` (see ``--output``).  CI runs a
reduced grid and archives the JSON as an artifact.

Usage::

    python scripts/bench_sim.py [--benchmarks a,b,...]
        [--machines spec ...] [--output PATH] [--repeat K] [--check]
        [--gate BASELINE.json]

``--gate`` applies the warm-throughput regression gate from
``scripts/validate_bench.py`` to the freshly measured document: exit
status 1 when warm instr/s drops more than 10% below the baseline.
``--ledger PATH`` additionally ingests the document into the run-history
ledger (see ``repro ingest`` / ``repro dash``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

DEFAULT_BENCHMARKS = "ccom,grr,linpack,livermore,met,stanford,whet,yacc"
DEFAULT_MACHINES = ["base", "superscalar:2", "superscalar:4",
                    "superscalar:8", "superpipelined:4", "multititan",
                    "cray1"]


def _best(fn, repeat: int) -> float:
    best = None
    for _ in range(max(1, repeat)):
        seconds = fn()
        if best is None or seconds < best:
            best = seconds
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated benchmark names")
    parser.add_argument("--machines", nargs="+", default=DEFAULT_MACHINES,
                        help="machine preset specs")
    parser.add_argument("--output", default="BENCH_sim.json")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per mode (best is kept)")
    parser.add_argument("--check", action="store_true",
                        help="verify memoized == direct before timing")
    parser.add_argument("--gate", metavar="BASELINE",
                        help="fail if warm throughput regresses >10%% "
                             "vs this baseline BENCH_sim.json")
    parser.add_argument("--ledger", metavar="PATH",
                        help="also ingest the measured document into "
                             "this run-history ledger")
    args = parser.parse_args(argv)

    from repro.benchmarks import suite
    from repro.machine.presets import resolve
    from repro.opt.driver import compile_source
    from repro.sim import interp
    from repro.sim import replay as replay_mod
    from repro.sim.memo import MemoStore, clear_registry, replay_with_memo
    from repro.sim.replay import BACKEND, ReplayCore
    from repro.sim.timing import simulate

    names = [b for b in args.benchmarks.replace(",", " ").split() if b]
    benchs = [suite.get(name) for name in names]
    machines = [resolve(spec) for spec in args.machines]

    programs = [
        compile_source(b.source(), suite.default_options(b)) for b in benchs
    ]

    # --- interpreter throughput (functional execution + trace recording)
    def interp_pass() -> float:
        start = time.perf_counter()
        for program in programs:
            interp.run(program)
        return time.perf_counter() - start

    interp_seconds = _best(interp_pass, args.repeat)
    runs = [interp.run(program) for program in programs]
    traces = [r.trace for r in runs]
    total_instr = sum(r.instructions for r in runs)
    grid_instr = total_instr * len(machines)

    if args.check:
        with tempfile.TemporaryDirectory() as check_root:
            store = MemoStore(os.path.join(check_root, "memo"))
            for name, trace in zip(names, traces):
                for machine in machines:
                    ref = simulate(trace, machine, observe=True,
                                   memoize=False)
                    memo = simulate(trace, machine, observe=True)
                    # Steady-state rerun: the vectorized kernel under
                    # the NumPy backend, the memo-table loop otherwise.
                    core = ReplayCore(trace, machine, observe=True)
                    core.run()
                    steady = core.run()
                    # Fresh core warm-started from the persistent store
                    # (second call adopts what the first one wrote).
                    replay_with_memo(store, trace, machine, observe=True)
                    clear_registry()
                    adopted = replay_with_memo(store, trace, machine,
                                               observe=True)
                    for label, got in (
                        ("memoized", (memo.minor_cycles, memo.stalls)),
                        ("steady-state",
                         (steady.minor_cycles, steady.stalls)),
                        ("persistent-memo",
                         (adopted.minor_cycles, adopted.stalls)),
                    ):
                        if got != (ref.minor_cycles, ref.stalls):
                            print(f"FAIL: {name} on {machine.name}: "
                                  f"{label} replay differs from direct",
                                  file=sys.stderr)
                            return 1
        print(f"check: memoized == steady-state == persistent-memo == "
              f"direct on all {len(names) * len(machines)} cells "
              f"({BACKEND} backend)")

    # --- direct (per-instruction) timing replay: the pre-memo reference
    def direct_pass() -> float:
        start = time.perf_counter()
        for trace in traces:
            for machine in machines:
                simulate(trace, machine, memoize=False)
        return time.perf_counter() - start

    direct_seconds = _best(direct_pass, args.repeat)

    # --- memoized, cold: plan build + first-touch misses included
    # (the static-table skeleton is cleared too, so the direct mode above
    # keeps it warm while cold honestly pays for everything derived)
    def cold_pass() -> float:
        for trace in traces:
            trace._plan = None
            trace._skel = None
        start = time.perf_counter()
        for trace in traces:
            for machine in machines:
                simulate(trace, machine)
        return time.perf_counter() - start

    cold_seconds = _best(cold_pass, args.repeat)

    # --- memoized, warm: steady-state replay on populated memo tables
    cores = [
        (trace, [ReplayCore(trace, machine) for machine in machines])
        for trace in traces
    ]
    for _, machine_cores in cores:
        for core in machine_cores:
            # Twice: the first run resolves, the second builds (and
            # caches) the vectorized view, so warm passes measure the
            # steady state even with --repeat 1.
            core.run()
            core.run()

    def warm_pass() -> float:
        start = time.perf_counter()
        for _, machine_cores in cores:
            for core in machine_cores:
                core.run()
        return time.perf_counter() - start

    warm_seconds = _best(warm_pass, args.repeat)

    # --- per-benchmark warm breakdown (which traces dominate the grid)
    per_benchmark = {}
    for (name, run), (_, machine_cores) in zip(zip(names, runs), cores):
        def bench_pass(machine_cores=machine_cores):
            start = time.perf_counter()
            for core in machine_cores:
                core.run()
            return time.perf_counter() - start

        seconds = max(_best(bench_pass, args.repeat), 1e-9)
        instructions = run.instructions * len(machines)
        per_benchmark[name] = {
            "instructions": instructions,
            "warm_seconds": round(seconds, 4),
            "warm_instr_per_sec": round(instructions / seconds),
        }

    # --- raw vectorized kernel (NumPy backend only): resolved-core
    # rerun without the run() dispatch, i.e. the kernel's ceiling
    vectorized_seconds = None
    if BACKEND == "numpy":
        kernels = []
        for _, machine_cores in cores:
            if kernels is None:
                break
            for core in machine_cores:
                pv = core._plan_vec()
                cv = core._vec
                if cv is None and core._resolved is not None:
                    cv = replay_mod._replay_vec.build_core_vec(core, pv)
                    core._vec = cv
                if pv is None or cv is None or cv is False:
                    kernels = None
                    break
                kernels.append((core, pv, cv))
        if kernels:
            run_vectorized = replay_mod._replay_vec.run_vectorized

            def vectorized_pass() -> float:
                start = time.perf_counter()
                for core, pv, cv in kernels:
                    run_vectorized(core, pv, cv)
                return time.perf_counter() - start

            vectorized_seconds = _best(vectorized_pass, args.repeat)

    # --- persistent-memo adoption: fresh core per cell per pass, memo
    # tables pickled from disk (what a warm-cache cold process pays)
    with tempfile.TemporaryDirectory() as memo_root:
        store = MemoStore(os.path.join(memo_root, "memo"))
        for trace in traces:
            for machine in machines:
                replay_with_memo(store, trace, machine)

        def warm_persistent_pass() -> float:
            clear_registry()
            start = time.perf_counter()
            for trace in traces:
                for machine in machines:
                    replay_with_memo(store, trace, machine)
            return time.perf_counter() - start

        warm_persistent_seconds = _best(warm_persistent_pass, args.repeat)

    modes = {
        "interp": (interp_seconds, total_instr),
        "direct": (direct_seconds, grid_instr),
        "cold": (cold_seconds, grid_instr),
        "warm": (warm_seconds, grid_instr),
        "warm_persistent": (warm_persistent_seconds, grid_instr),
    }
    if vectorized_seconds is not None:
        modes["vectorized"] = (vectorized_seconds, grid_instr)
    for label, (seconds, instructions) in modes.items():
        print(f"{label:7s} {seconds:7.3f}s  "
              f"{instructions / seconds / 1e6:8.2f} M instr/s")

    document = {
        "grid": {"benchmarks": names, "machines": args.machines,
                 "cells": len(names) * len(machines),
                 "dynamic_instructions": total_instr,
                 "grid_instructions": grid_instr},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repeat": args.repeat,
        "backend": BACKEND,
        "benchmarks": per_benchmark,
        "modes": {
            label: {
                "seconds": round(seconds, 4),
                "instructions": instructions,
                "instr_per_sec": round(instructions / seconds),
            }
            for label, (seconds, instructions) in modes.items()
        },
        "speedup": {
            "cold_vs_direct": round(direct_seconds / cold_seconds, 3),
            "warm_vs_direct": round(direct_seconds / warm_seconds, 3),
            "warm_persistent_vs_direct": round(
                direct_seconds / warm_persistent_seconds, 3),
        },
    }
    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}: memoized replay "
          f"{document['speedup']['cold_vs_direct']}x cold / "
          f"{document['speedup']['warm_vs_direct']}x warm "
          f"vs per-instruction path")

    if args.ledger:
        from repro.obs.history import HistoryLedger

        with HistoryLedger(args.ledger) as ledger:
            result = ledger.ingest_bench(document, source=args.output)
        print(f"ledger {args.ledger}: {result.summary()}")

    if args.gate:
        import validate_bench

        try:
            with open(args.gate, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"FAIL: cannot load baseline {args.gate}: {exc}",
                  file=sys.stderr)
            return 1
        failures, lines = validate_bench.check_throughput(
            document, baseline
        )
        print(f"throughput gate vs {args.gate}:")
        for line in lines:
            print(line)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python
"""Benchmark the simulator: interpreter and timing-replay throughput.

Measures, on a benchmarks x machines grid:

1. ``interp``  — functional interpreter throughput (trace recording),
2. ``direct``  — timing replay with memoization disabled: the
   per-instruction reference path, equivalent to the pre-memoization
   simulator (every dynamic instruction re-walked per machine),
3. ``cold``    — memoized replay from scratch: plan construction plus
   first-touch memo misses included (fresh ``ReplayCore`` per cell,
   plans reset beforehand), i.e. what a first ``simulate()`` costs,
4. ``warm``    — memoized replay in the steady state: a second
   ``ReplayCore.run()`` on already-populated memo tables, i.e. what
   every later replay of the same trace costs.

Each mode reports dynamic instructions per second; the headline number
is ``speedup.cold_vs_direct`` — the end-to-end grid speedup of the
memoized path over the per-instruction path.  With ``--check`` the
memoized grid is additionally verified bit-identical (minor cycles and
full stall breakdowns) against the direct path before timing.

Results go to ``BENCH_sim.json`` (see ``--output``).  CI runs a
reduced grid and archives the JSON as an artifact.

Usage::

    python scripts/bench_sim.py [--benchmarks a,b,...]
        [--machines spec ...] [--output PATH] [--repeat K] [--check]
        [--gate BASELINE.json]

``--gate`` applies the warm-throughput regression gate from
``scripts/validate_bench.py`` to the freshly measured document: exit
status 1 when warm instr/s drops more than 10% below the baseline.
``--ledger PATH`` additionally ingests the document into the run-history
ledger (see ``repro ingest`` / ``repro dash``).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

DEFAULT_BENCHMARKS = "ccom,grr,linpack,livermore,met,stanford,whet,yacc"
DEFAULT_MACHINES = ["base", "superscalar:2", "superscalar:4",
                    "superscalar:8", "superpipelined:4", "multititan",
                    "cray1"]


def _best(fn, repeat: int) -> float:
    best = None
    for _ in range(max(1, repeat)):
        seconds = fn()
        if best is None or seconds < best:
            best = seconds
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated benchmark names")
    parser.add_argument("--machines", nargs="+", default=DEFAULT_MACHINES,
                        help="machine preset specs")
    parser.add_argument("--output", default="BENCH_sim.json")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per mode (best is kept)")
    parser.add_argument("--check", action="store_true",
                        help="verify memoized == direct before timing")
    parser.add_argument("--gate", metavar="BASELINE",
                        help="fail if warm throughput regresses >10%% "
                             "vs this baseline BENCH_sim.json")
    parser.add_argument("--ledger", metavar="PATH",
                        help="also ingest the measured document into "
                             "this run-history ledger")
    args = parser.parse_args(argv)

    from repro.benchmarks import suite
    from repro.machine.presets import resolve
    from repro.opt.driver import compile_source
    from repro.sim import interp
    from repro.sim.replay import ReplayCore
    from repro.sim.timing import simulate

    names = [b for b in args.benchmarks.replace(",", " ").split() if b]
    benchs = [suite.get(name) for name in names]
    machines = [resolve(spec) for spec in args.machines]

    programs = [
        compile_source(b.source(), suite.default_options(b)) for b in benchs
    ]

    # --- interpreter throughput (functional execution + trace recording)
    def interp_pass() -> float:
        start = time.perf_counter()
        for program in programs:
            interp.run(program)
        return time.perf_counter() - start

    interp_seconds = _best(interp_pass, args.repeat)
    runs = [interp.run(program) for program in programs]
    traces = [r.trace for r in runs]
    total_instr = sum(r.instructions for r in runs)
    grid_instr = total_instr * len(machines)

    if args.check:
        for name, trace in zip(names, traces):
            for machine in machines:
                memo = simulate(trace, machine, observe=True)
                ref = simulate(trace, machine, observe=True, memoize=False)
                if (memo.minor_cycles != ref.minor_cycles
                        or memo.stalls != ref.stalls):
                    print(f"FAIL: {name} on {machine.name}: memoized "
                          f"replay differs from direct", file=sys.stderr)
                    return 1
        print(f"check: memoized == direct on all "
              f"{len(names) * len(machines)} cells")

    # --- direct (per-instruction) timing replay: the pre-memo reference
    def direct_pass() -> float:
        start = time.perf_counter()
        for trace in traces:
            for machine in machines:
                simulate(trace, machine, memoize=False)
        return time.perf_counter() - start

    direct_seconds = _best(direct_pass, args.repeat)

    # --- memoized, cold: plan build + first-touch misses included
    # (the static-table skeleton is cleared too, so the direct mode above
    # keeps it warm while cold honestly pays for everything derived)
    def cold_pass() -> float:
        for trace in traces:
            trace._plan = None
            trace._skel = None
        start = time.perf_counter()
        for trace in traces:
            for machine in machines:
                simulate(trace, machine)
        return time.perf_counter() - start

    cold_seconds = _best(cold_pass, args.repeat)

    # --- memoized, warm: steady-state replay on populated memo tables
    cores = [
        (trace, [ReplayCore(trace, machine) for machine in machines])
        for trace in traces
    ]
    for _, machine_cores in cores:
        for core in machine_cores:
            core.run()

    def warm_pass() -> float:
        start = time.perf_counter()
        for _, machine_cores in cores:
            for core in machine_cores:
                core.run()
        return time.perf_counter() - start

    warm_seconds = _best(warm_pass, args.repeat)

    modes = {
        "interp": (interp_seconds, total_instr),
        "direct": (direct_seconds, grid_instr),
        "cold": (cold_seconds, grid_instr),
        "warm": (warm_seconds, grid_instr),
    }
    for label, (seconds, instructions) in modes.items():
        print(f"{label:7s} {seconds:7.3f}s  "
              f"{instructions / seconds / 1e6:8.2f} M instr/s")

    document = {
        "grid": {"benchmarks": names, "machines": args.machines,
                 "cells": len(names) * len(machines),
                 "dynamic_instructions": total_instr,
                 "grid_instructions": grid_instr},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "repeat": args.repeat,
        "modes": {
            label: {
                "seconds": round(seconds, 4),
                "instructions": instructions,
                "instr_per_sec": round(instructions / seconds),
            }
            for label, (seconds, instructions) in modes.items()
        },
        "speedup": {
            "cold_vs_direct": round(direct_seconds / cold_seconds, 3),
            "warm_vs_direct": round(direct_seconds / warm_seconds, 3),
        },
    }
    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}: memoized replay "
          f"{document['speedup']['cold_vs_direct']}x cold / "
          f"{document['speedup']['warm_vs_direct']}x warm "
          f"vs per-instruction path")

    if args.ledger:
        from repro.obs.history import HistoryLedger

        with HistoryLedger(args.ledger) as ledger:
            result = ledger.ingest_bench(document, source=args.output)
        print(f"ledger {args.ledger}: {result.summary()}")

    if args.gate:
        import validate_bench

        try:
            with open(args.gate, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"FAIL: cannot load baseline {args.gate}: {exc}",
                  file=sys.stderr)
            return 1
        failures, lines = validate_bench.check_throughput(
            document, baseline
        )
        print(f"throughput gate vs {args.gate}:")
        for line in lines:
            print(line)
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

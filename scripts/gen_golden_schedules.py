#!/usr/bin/env python
"""Regenerate the golden schedule digests pinned by the test suite.

For every suite benchmark compiled *scheduled for* each of the nine
golden machines (the paper's seven plus the two underpipelined
variants), this records a SHA-256 digest of the fully scheduled program
text.  ``tests/test_sched_backends.py`` recomputes the digests with the
``"list"`` scheduler backend and compares: the registry refactor must
keep the default backend bit-identical to the historical scheduler.

Only regenerate (``python scripts/gen_golden_schedules.py``) when a
*deliberate* scheduler or code-generation change lands; the diff of
``tests/golden/schedules.json`` is then part of the review.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "golden", "schedules.json",
)


def golden_machines():
    """The nine machines the golden grid pins (paper seven + the two
    underpipelined variants)."""
    from repro.machine.presets import (
        paper_machines,
        underpipelined_half_issue,
        underpipelined_slow_cycle,
    )

    return paper_machines() + [
        underpipelined_slow_cycle(),
        underpipelined_half_issue(),
    ]


def schedule_digest(benchmark, config, scheduler: str | None = None) -> str:
    """SHA-256 of the scheduled program text for one grid cell."""
    from repro.benchmarks import suite
    from repro.isa.printer import format_program
    from repro.opt.driver import compile_source

    kwargs = {"schedule_for": config}
    if scheduler is not None:
        kwargs["scheduler"] = scheduler
    options = suite.default_options(benchmark, **kwargs)
    program = compile_source(benchmark.source(), options)
    text = format_program(program)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def main() -> int:
    from repro.benchmarks import suite

    digests: dict[str, str] = {}
    machines = golden_machines()
    for benchmark in suite.all_benchmarks():
        for config in machines:
            key = f"{benchmark.name}@{config.name}"
            digests[key] = schedule_digest(benchmark, config)
            print(f"{key:40s} {digests[key][:16]}")
    os.makedirs(os.path.dirname(OUTPUT), exist_ok=True)
    with open(OUTPUT, "w", encoding="utf-8") as handle:
        json.dump(digests, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUTPUT}: {len(digests)} cells")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

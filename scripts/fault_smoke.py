#!/usr/bin/env python3
"""Fault-injection smoke matrix for the supervised execution engine.

Runs a reduced benchmark x machine grid once cleanly (serial, no
faults) to establish the ground truth, then once per fault scenario
(worker crash, hang -> timeout, corrupt result payload) under
``REPRO_FAULTS``-style injection with a parallel supervised pool, and
asserts:

* every faulted sweep completes (no cell ends ``failed``);
* the cells the faults targeted end ``retried`` or ``degraded``;
* every cell's measurement — instruction counts, cycle counts, stall
  attribution, replay-memo counters — is bit-identical to the clean run.

The outcome is written as a JSON manifest (default
``results/fault_manifest.json``) for CI to archive; the exit status is
nonzero when any scenario deviates from the clean run.

Usage::

    python scripts/fault_smoke.py [--output results/fault_manifest.json]
                                  [--workers 2]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

BENCHES = ["whet", "linpack", "stanford"]
MACHINES = ["base", "superscalar:4"]

#: scenario name -> (REPRO_FAULTS plan, benchmark the fault targets).
#: The hang backstop (60s) deliberately exceeds the supervisor's
#: group timeout so recovery exercises the pool-kill path, not the
#: worker's own unblock.
SCENARIOS = {
    "crash": ("crash@whet#1", "whet"),
    "hang": ("hang@linpack#1, hang=60", "linpack"),
    "corrupt-payload": ("corrupt-result@stanford#1", "stanford"),
}


def cell_payload(cell) -> dict:
    """The measurement content of one cell (status excluded)."""
    return {
        "benchmark": cell.benchmark,
        "machine": cell.machine,
        "options": cell.options_label,
        "instructions": cell.instructions,
        "checksum_ok": cell.checksum_ok,
        "minor_cycles": cell.minor_cycles,
        "base_cycles": cell.base_cycles,
        "parallelism": cell.parallelism,
        "stalls": cell.stalls.as_dict() if cell.stalls is not None else None,
        "replay": cell.replay,
    }


def run_grid(workers, faults=None, policy=None):
    from repro.benchmarks import suite
    from repro.engine.executor import execute
    from repro.engine.plan import plan_sweep

    suite.clear_cache()  # keep every run's compile work independent
    plan = plan_sweep(BENCHES, MACHINES, observe=True)
    return execute(plan, workers=workers, policy=policy, faults=faults)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="results/fault_manifest.json")
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args(argv)

    from repro.engine.faults import FaultPlan
    from repro.engine.resilience import RetryPolicy, failure_manifest

    policy = RetryPolicy(base_delay=0.01, max_delay=0.1, group_timeout=8.0)

    print(f"clean baseline: {BENCHES} x {MACHINES} (serial)")
    clean = run_grid(workers=1)
    baseline = [cell_payload(c) for c in clean.cells]

    manifest = {
        "grid": {"benchmarks": BENCHES, "machines": MACHINES,
                 "workers": args.workers},
        "scenarios": {},
        "ok": True,
    }

    for name, (spec, target) in SCENARIOS.items():
        print(f"scenario {name!r}: REPRO_FAULTS={spec!r}")
        result = run_grid(
            workers=args.workers,
            faults=FaultPlan.parse(spec),
            policy=policy,
        )
        problems = []

        failed = failure_manifest(result.cells)
        if failed is not None:
            problems.append(failed)

        targeted = [c for c in result.cells if c.benchmark == target]
        for cell in targeted:
            if cell.status not in ("retried", "degraded"):
                problems.append(
                    f"{cell.benchmark}@{cell.machine}: expected "
                    f"retried/degraded, got {cell.status!r}"
                )

        observed = [cell_payload(c) for c in result.cells]
        for want, got in zip(baseline, observed):
            if want != got:
                problems.append(
                    f"{want['benchmark']}@{want['machine']}: payload "
                    "deviates from clean run"
                )

        report = result.report
        statuses = {
            "ok": report.ok_cells, "retried": report.retried_cells,
            "degraded": report.degraded_cells,
            "failed": report.failed_cells,
        }
        if sum(statuses.values()) != report.cells:
            problems.append(
                f"status conservation violated: {statuses} != "
                f"{report.cells} cells"
            )

        manifest["scenarios"][name] = {
            "faults": spec,
            "target": target,
            "statuses": statuses,
            "group_retries": report.group_retries,
            "pool_restarts": report.pool_restarts,
            "problems": problems,
            "cells": [
                {"benchmark": c.benchmark, "machine": c.machine,
                 "status": c.status, "attempts": c.attempts,
                 "error": c.error}
                for c in result.cells
            ],
        }
        if problems:
            manifest["ok"] = False
            for problem in problems:
                print(f"  FAIL: {problem}", file=sys.stderr)
        else:
            print(f"  ok: {statuses}, {report.group_retries} retries, "
                  f"{report.pool_restarts} pool restarts")

    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"manifest written to {args.output}")

    if not manifest["ok"]:
        print("fault smoke FAILED", file=sys.stderr)
        return 1
    print("fault smoke passed: all surviving cells bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

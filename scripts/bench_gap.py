#!/usr/bin/env python
"""Measure the scheduling gap: heuristic list scheduling vs optimal.

Runs the benchmarks x machines grid once per scheduler backend (each
cell recompiled, scheduled for the machine it is measured on) and
reports per cell the minor-cycle gap ``cycles(list) - cycles(exact)``
plus the fraction of cells where the list heuristic already achieves
the search-optimal schedule.  ``exact`` seeds its branch-and-bound with
the list order, so a negative gap is impossible wherever the model is
sound; the script exits 1 if one appears.

Results go to ``BENCH_gap.json`` (see ``--output``).  ``--report-dir``
additionally writes one JSONL run report per backend
(``report_<backend>.jsonl``) — CI diffs those with ``repro diff`` to
assert exact <= list cell-wise.  ``--ledger`` ingests the document into
the run-history ledger.

Usage::

    python scripts/bench_gap.py [--benchmarks a,b,...]
        [--machines spec ...] [--schedulers list exact ...]
        [--output PATH] [--report-dir DIR] [--ledger PATH] [--workers N]
        [--flow] [--cache-dir DIR]

``--flow`` routes each backend's grid through the checkpointed
workflow DAG engine (:mod:`repro.flow`): every compile and cell is
journaled and checkpointed under ``--cache-dir``, so a killed run
re-executes only the missing nodes when rerun.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    ),
)

DEFAULT_BENCHMARKS = "ccom,grr,linpack,livermore,met,stanford,whet,yacc"
DEFAULT_MACHINES = ["base", "superscalar:2", "superscalar:4",
                    "superscalar:8", "superpipelined:4", "multititan",
                    "cray1"]
DEFAULT_SCHEDULERS = ["list", "swp", "exact"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--benchmarks", default=DEFAULT_BENCHMARKS,
                        help="comma-separated benchmark names")
    parser.add_argument("--machines", nargs="+", default=DEFAULT_MACHINES,
                        help="machine preset specs")
    parser.add_argument("--schedulers", nargs="+",
                        default=DEFAULT_SCHEDULERS,
                        help="scheduler backends, baseline first")
    parser.add_argument("--output", default="BENCH_gap.json")
    parser.add_argument("--report-dir", metavar="DIR", default=None,
                        help="also write one JSONL run report per "
                             "backend (report_<backend>.jsonl)")
    parser.add_argument("--ledger", metavar="PATH",
                        help="also ingest the document into this "
                             "run-history ledger")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--flow", action="store_true",
                        help="run each backend grid as a checkpointed "
                             "workflow DAG (resumable; needs --cache-dir)")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="trace cache directory for --flow "
                             "(default: the engine default cache)")
    args = parser.parse_args(argv)

    from repro.analysis.gap import GapCell, GapReport
    from repro.engine.executor import execute
    from repro.engine.plan import plan_sweep
    from repro.machine.presets import resolve
    from repro.obs.recorder import (
        NULL_RECORDER,
        SCHEMA_VERSION,
        JsonlRecorder,
    )

    names = [b for b in args.benchmarks.replace(",", " ").split() if b]
    machines = [resolve(spec) for spec in args.machines]
    schedulers = [s for spec in args.schedulers
                  for s in spec.replace(",", " ").split()]
    baseline = schedulers[0]

    if args.report_dir:
        os.makedirs(args.report_dir, exist_ok=True)

    cycles: dict[tuple, dict] = {}
    order: list[tuple] = []
    start = time.perf_counter()
    for sched in schedulers:
        recorder = NULL_RECORDER
        if args.report_dir:
            recorder = JsonlRecorder(
                os.path.join(args.report_dir, f"report_{sched}.jsonl"))
        with recorder:
            if recorder.enabled:
                recorder.emit("run_start", schema=SCHEMA_VERSION,
                              run_id=f"gap:{sched}",
                              machines=[c.name for c in machines])
            plan = plan_sweep(names, machines,
                              schedule_for_target=True, scheduler=sched)
            if args.flow:
                from repro.engine.cache import DEFAULT_CACHE_DIR, open_cache
                from repro.flow import FlowContext
                from repro.flow.flows import run_sweep_flow

                flow_ctx = FlowContext(
                    cache=open_cache(args.cache_dir or DEFAULT_CACHE_DIR,
                                     False),
                    flow_spec={"driver": "gap", "scheduler": sched,
                               "benchmarks": names,
                               "machines": args.machines},
                )
                result = run_sweep_flow(plan, flow=flow_ctx,
                                        workers=args.workers,
                                        recorder=recorder)
            else:
                result = execute(plan, workers=args.workers,
                                 recorder=recorder)
            if recorder.enabled:
                recorder.emit("run_end", seconds=result.report.seconds,
                              counters=dict(recorder.counters))
        for cell in result.cells:
            key = (cell.benchmark, cell.machine)
            if key not in cycles:
                cycles[key] = {}
                order.append(key)
            if cell.status != "failed":
                cycles[key][sched] = cell.minor_cycles
        print(f"{sched:6s} grid done "
              f"({result.report.seconds:6.2f}s engine time)")
    wall = time.perf_counter() - start

    report = GapReport(
        baseline=baseline,
        schedulers=tuple(schedulers),
        cells=tuple(GapCell(benchmark=b, machine=m, cycles=cycles[(b, m)])
                    for b, m in order),
    )
    print(report.render())

    document = {
        "grid": {"benchmarks": names, "machines": args.machines,
                 "cells": len(names) * len(machines)},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seconds": round(wall, 2),
        "gap": report.as_dict(),
    }
    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    frac = report.optimal_fraction()
    frac_text = "n/a" if frac != frac else f"{frac:.1%}"
    print(f"wrote {args.output}: heuristic optimal on {frac_text} "
          f"of cells")

    if args.ledger:
        from repro.obs.history import HistoryLedger

        with HistoryLedger(args.ledger) as ledger:
            result = ledger.ingest_bench(document, source=args.output)
        print(f"ledger {args.ledger}: {result.summary()}")

    if not report.ok:
        print("FAIL: 'exact' exceeded the baseline on some cell "
              "(seeded search can only improve; model bug?)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

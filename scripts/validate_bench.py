"""Dev helper: validate one benchmark across compile configurations,
or gate simulator throughput against the committed baseline.

Usage::

    python scripts/validate_bench.py <name> [quick]
    python scripts/validate_bench.py --throughput CANDIDATE.json
        [--baseline BENCH_sim.json] [--max-regression 0.10]

The first form compiles and runs one suite benchmark under every
optimization level (plus unroll variants unless ``quick``) and checks
the result checksum each time.

The second form compares a freshly measured ``BENCH_sim.json`` (produced
by ``scripts/bench_sim.py``) against the committed baseline and fails —
exit status 1 — when warm-replay throughput (``modes.warm.instr_per_sec``)
regresses by more than ``--max-regression`` (default 10%).  Other modes
are reported informationally but do not gate, since only the warm path
is the steady-state cost every later replay pays.
"""

import argparse
import json
import sys
import time

#: The mode whose throughput gates; others are informational only.
GATED_MODE = "warm"

#: Default allowed fractional drop in warm instr/s before failing.
DEFAULT_MAX_REGRESSION = 0.10


def check_throughput(
    candidate: dict, baseline: dict,
    max_regression: float = DEFAULT_MAX_REGRESSION,
) -> tuple[list[str], list[str]]:
    """Compare two ``BENCH_sim.json`` documents mode by mode.

    Returns ``(failures, lines)``: the failure messages (empty when the
    gated mode holds) and human-readable report lines for every mode in
    the baseline.  Only :data:`GATED_MODE` can fail; a missing or
    malformed gated mode in either document is itself a failure so a
    truncated candidate can't pass silently.
    """
    failures: list[str] = []
    lines: list[str] = []
    cand_modes = candidate.get("modes") or {}
    base_modes = baseline.get("modes") or {}
    for label in base_modes:
        base = (base_modes.get(label) or {}).get("instr_per_sec")
        cand = (cand_modes.get(label) or {}).get("instr_per_sec")
        if not isinstance(base, (int, float)) or base <= 0 \
                or not isinstance(cand, (int, float)) or cand <= 0:
            if label == GATED_MODE:
                failures.append(
                    f"{label}: instr_per_sec missing or non-positive "
                    f"(baseline={base!r}, candidate={cand!r})"
                )
            continue
        ratio = cand / base
        gated = label == GATED_MODE
        verdict = "ok"
        if ratio < 1.0 - max_regression:
            verdict = "REGRESSED" if gated else "slower (not gated)"
            if gated:
                failures.append(
                    f"{label}: {cand:,.0f} instr/s is "
                    f"{(1.0 - ratio):.1%} below baseline {base:,.0f} "
                    f"(allowed {max_regression:.0%})"
                )
        lines.append(
            f"  {label:7s} baseline {base / 1e6:8.2f} M/s  "
            f"candidate {cand / 1e6:8.2f} M/s  "
            f"({ratio:6.1%}) {verdict}"
        )
    if GATED_MODE not in base_modes:
        failures.append(f"baseline has no '{GATED_MODE}' mode")
    return failures, lines


def _cmd_throughput(args) -> int:
    try:
        with open(args.throughput, encoding="utf-8") as handle:
            candidate = json.load(handle)
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot load benchmark documents: {exc}",
              file=sys.stderr)
        return 1
    failures, lines = check_throughput(
        candidate, baseline, args.max_regression
    )
    print(f"throughput gate: {args.throughput} vs {args.baseline} "
          f"(max regression {args.max_regression:.0%} on "
          f"'{GATED_MODE}')")
    for line in lines:
        print(line)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("PASS" if not failures else f"FAIL ({len(failures)})")
    return 1 if failures else 0


def _cmd_validate(args) -> int:
    from repro.benchmarks import suite
    from repro.machine import ideal_superscalar
    from repro.opt import CompilerOptions, OptLevel
    from repro.sim import simulate

    bench = suite.get(args.name)
    expected = bench.reference()
    print(f"{args.name}: reference checksum = {expected}")
    configs = [("O%d" % lvl, CompilerOptions(opt_level=OptLevel(lvl)))
               for lvl in range(5)]
    if not args.quick:
        configs += [
            ("u4-naive", CompilerOptions(unroll=4)),
            ("u4-careful", CompilerOptions(unroll=4, careful=True)),
            ("u10-careful", CompilerOptions(unroll=10, careful=True)),
        ]
    failures = 0
    for label, opts in configs:
        t0 = time.time()
        try:
            res = suite.run_benchmark(bench, opts)
        except Exception as exc:  # noqa: BLE001 - dev tool
            print(f"  {label:12s} ERROR: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
        ok = abs(res.value - expected) <= bench.fp_tolerance
        failures += 0 if ok else 1
        print(
            f"  {label:12s} value={res.value} ok={ok} "
            f"dyn={res.instructions} ILP={ilp:.3f} ({time.time()-t0:.1f}s)"
        )
    print("PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("name", nargs="?",
                        help="benchmark to validate across compile configs")
    parser.add_argument("quick", nargs="?", choices=["quick"],
                        help="skip the slower unroll configurations")
    parser.add_argument("--throughput", metavar="CANDIDATE",
                        help="gate a fresh BENCH_sim.json against the "
                             "committed baseline instead of validating "
                             "a benchmark")
    parser.add_argument("--baseline", default="BENCH_sim.json",
                        help="baseline document for --throughput "
                             "(default: committed BENCH_sim.json)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="allowed fractional warm-throughput drop "
                             "(default 0.10)")
    args = parser.parse_args(argv)
    if args.throughput:
        return _cmd_throughput(args)
    if not args.name:
        parser.error("either a benchmark name or --throughput is required")
    return _cmd_validate(args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Dev helper: validate one benchmark across compile configurations.

Usage: python scripts/validate_bench.py <name> [quick]
"""

import sys
import time

from repro.benchmarks import suite
from repro.machine import ideal_superscalar
from repro.opt import CompilerOptions, OptLevel
from repro.sim import simulate


def main() -> int:
    name = sys.argv[1]
    quick = len(sys.argv) > 2 and sys.argv[2] == "quick"
    bench = suite.get(name)
    expected = bench.reference()
    print(f"{name}: reference checksum = {expected}")
    configs = [("O%d" % lvl, CompilerOptions(opt_level=OptLevel(lvl)))
               for lvl in range(5)]
    if not quick:
        configs += [
            ("u4-naive", CompilerOptions(unroll=4)),
            ("u4-careful", CompilerOptions(unroll=4, careful=True)),
            ("u10-careful", CompilerOptions(unroll=10, careful=True)),
        ]
    failures = 0
    for label, opts in configs:
        t0 = time.time()
        try:
            res = suite.run_benchmark(bench, opts)
        except Exception as exc:  # noqa: BLE001 - dev tool
            print(f"  {label:12s} ERROR: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
        ok = abs(res.value - expected) <= bench.fp_tolerance
        failures += 0 if ok else 1
        print(
            f"  {label:12s} value={res.value} ok={ok} "
            f"dyn={res.instructions} ILP={ilp:.3f} ({time.time()-t0:.1f}s)"
        )
    print("PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Dev helper: validate one benchmark across compile configurations,
or gate simulator throughput against the committed baseline.

Usage::

    python scripts/validate_bench.py <name> [quick]
    python scripts/validate_bench.py --throughput CANDIDATE.json
        [--baseline BENCH_sim.json] [--max-regression 0.10]

The first form compiles and runs one suite benchmark under every
optimization level (plus unroll variants unless ``quick``) and checks
the result checksum each time.

The second form compares a freshly measured ``BENCH_sim.json`` (produced
by ``scripts/bench_sim.py``) against the committed baseline and fails —
exit status 1 — when warm-replay throughput (``modes.warm.instr_per_sec``)
regresses by more than ``--max-regression`` (default 10%).  Other modes
are reported informationally but do not gate, since only the warm path
is the steady-state cost every later replay pays.

The gate logic itself lives in ``src/repro/obs/schema.py`` (one shared
module with the report-schema validators), loaded here by file path so
the script still runs without the package installed; ``repro diff``
applies the same policy to ledger entries and whole run reports.
"""

import argparse
import importlib.util
import json
import sys
import time
from pathlib import Path

_SCHEMA_PATH = (Path(__file__).resolve().parent.parent
                / "src" / "repro" / "obs" / "schema.py")


def _load_schema():
    spec = importlib.util.spec_from_file_location("_repro_obs_schema",
                                                  _SCHEMA_PATH)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


_schema = _load_schema()

# Re-exports (scripts/bench_sim.py imports these from here).
GATED_MODE = _schema.GATED_MODE
DEFAULT_MAX_REGRESSION = _schema.DEFAULT_MAX_REGRESSION
check_throughput = _schema.check_throughput


def _cmd_throughput(args) -> int:
    try:
        with open(args.throughput, encoding="utf-8") as handle:
            candidate = json.load(handle)
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot load benchmark documents: {exc}",
              file=sys.stderr)
        return 1
    failures, lines = check_throughput(
        candidate, baseline, args.max_regression
    )
    print(f"throughput gate: {args.throughput} vs {args.baseline} "
          f"(max regression {args.max_regression:.0%} on "
          f"'{GATED_MODE}')")
    for line in lines:
        print(line)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    print("PASS" if not failures else f"FAIL ({len(failures)})")
    return 1 if failures else 0


def _cmd_validate(args) -> int:
    from repro.benchmarks import suite
    from repro.machine import ideal_superscalar
    from repro.opt import CompilerOptions, OptLevel
    from repro.sim import simulate

    bench = suite.get(args.name)
    expected = bench.reference()
    print(f"{args.name}: reference checksum = {expected}")
    configs = [("O%d" % lvl, CompilerOptions(opt_level=OptLevel(lvl)))
               for lvl in range(5)]
    if not args.quick:
        configs += [
            ("u4-naive", CompilerOptions(unroll=4)),
            ("u4-careful", CompilerOptions(unroll=4, careful=True)),
            ("u10-careful", CompilerOptions(unroll=10, careful=True)),
        ]
    failures = 0
    for label, opts in configs:
        t0 = time.time()
        try:
            res = suite.run_benchmark(bench, opts)
        except Exception as exc:  # noqa: BLE001 - dev tool
            print(f"  {label:12s} ERROR: {type(exc).__name__}: {exc}")
            failures += 1
            continue
        ilp = simulate(res.trace, ideal_superscalar(64)).parallelism
        ok = abs(res.value - expected) <= bench.fp_tolerance
        failures += 0 if ok else 1
        print(
            f"  {label:12s} value={res.value} ok={ok} "
            f"dyn={res.instructions} ILP={ilp:.3f} ({time.time()-t0:.1f}s)"
        )
    print("PASS" if failures == 0 else f"FAIL ({failures})")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("name", nargs="?",
                        help="benchmark to validate across compile configs")
    parser.add_argument("quick", nargs="?", choices=["quick"],
                        help="skip the slower unroll configurations")
    parser.add_argument("--throughput", metavar="CANDIDATE",
                        help="gate a fresh BENCH_sim.json against the "
                             "committed baseline instead of validating "
                             "a benchmark")
    parser.add_argument("--baseline", default="BENCH_sim.json",
                        help="baseline document for --throughput "
                             "(default: committed BENCH_sim.json)")
    parser.add_argument("--max-regression", type=float,
                        default=DEFAULT_MAX_REGRESSION,
                        help="allowed fractional warm-throughput drop "
                             "(default 0.10)")
    args = parser.parse_args(argv)
    if args.throughput:
        return _cmd_throughput(args)
    if not args.name:
        parser.error("either a benchmark name or --throughput is required")
    return _cmd_validate(args)


if __name__ == "__main__":
    raise SystemExit(main())

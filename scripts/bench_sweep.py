#!/usr/bin/env python
"""Benchmark the execution engine: serial vs parallel suite sweeps.

Times the same benchmarks x machines grid three ways —

1. serial, cold (``workers=1``, empty trace cache),
2. parallel, cold (``--workers N``, empty trace cache),
3. serial, warm  (``workers=1``, cache populated by the runs above),
4. serial, warm, traced (same, with span tracing + metrics enabled) —

verifies all four produce identical rows, and writes the measurements
to ``BENCH_sweep.json``.  Each configuration runs in a fresh
subprocess so no in-process memoization leaks between timings; the
reported numbers are honest end-to-end wall times.  The traced run
also yields ``traced_overhead_pct`` — how much the observability layer
costs on a warm sweep — and ``--trace-out`` exports its span timeline
as a Chrome trace-event file loadable at https://ui.perfetto.dev.

Usage::

    python scripts/bench_sweep.py [--workers N] [--benchmarks a,b,...]
        [--machines spec ...] [--output PATH] [--repeat K]
        [--trace-out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

#: Runs one timed sweep in a pristine interpreter and prints JSON.
_CHILD = r"""
import json, sys, time
from repro.engine.cache import open_cache
from repro.engine.executor import execute
from repro.engine.plan import plan_sweep
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, write_chrome_trace

benchmarks, machines, workers, cache_dir, traced, trace_out = \
    json.loads(sys.argv[1])
plan = plan_sweep(benchmarks, machines)
tracer = Tracer() if traced else None
metrics = MetricsRegistry() if traced else None
start = time.perf_counter()
result = execute(plan, workers=workers, cache=open_cache(cache_dir),
                 tracer=tracer, metrics=metrics)
seconds = time.perf_counter() - start
if trace_out:
    write_chrome_trace(trace_out, tracer.spans)
print(json.dumps({
    "seconds": seconds,
    "spans": len(tracer.export()) if traced else 0,
    "report": result.report.as_dict(),
    "rows": [[c.benchmark, c.machine, c.instructions, c.base_cycles,
              c.parallelism] for c in result.cells],
}))
"""


def _timed_sweep(benchmarks, machines, workers, cache_dir, traced=False,
                 trace_out=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    payload = json.dumps([benchmarks, machines, workers, cache_dir,
                          traced, trace_out])
    out = subprocess.run(
        [sys.executable, "-c", _CHILD, payload],
        check=True, capture_output=True, text=True, env=env,
    )
    return json.loads(out.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4,
                        help="pool size for the parallel runs (default 4)")
    parser.add_argument("--benchmarks", default="ccom,linpack,livermore,"
                        "stanford,whet,yacc",
                        help="comma-separated benchmark names")
    parser.add_argument("--machines", nargs="+",
                        default=["base", "superscalar:2", "superscalar:4",
                                 "superscalar:8", "superpipelined:4",
                                 "multititan", "cray1"],
                        help="machine preset names")
    parser.add_argument("--output", default="BENCH_sweep.json")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per configuration (best is kept)")
    parser.add_argument("--trace-out", default=None,
                        help="write the traced run's span timeline as a "
                             "Chrome trace-event file (Perfetto-loadable)")
    args = parser.parse_args(argv)

    benchmarks = [b for b in args.benchmarks.replace(",", " ").split() if b]
    configs = []
    with tempfile.TemporaryDirectory(prefix="bench-sweep-cache-") as cache:
        runs = [
            ("serial_cold", 1, None, False),
            ("parallel_cold", args.workers, cache, False),
            # The parallel run above populated the cache; this measures a
            # fully warm second run (zero recompiles).
            ("serial_warm", 1, cache, False),
            # Same warm sweep with the observability layer live: the gap
            # to serial_warm is the tracing + metrics overhead.
            ("serial_warm_traced", 1, cache, True),
        ]
        for label, workers, cache_dir, traced in runs:
            best = None
            for _ in range(max(1, args.repeat)):
                timing = _timed_sweep(
                    benchmarks, args.machines, workers, cache_dir,
                    traced=traced,
                    trace_out=args.trace_out if traced else None,
                )
                if best is None or timing["seconds"] < best["seconds"]:
                    best = timing
            configs.append({"label": label, "workers": workers,
                            "cached": cache_dir is not None,
                            "traced": traced, **best})
            extra = f", {best['spans']} spans" if traced else ""
            print(f"{label:18s} workers={workers} "
                  f"{best['seconds']:7.2f}s  "
                  f"(cache {best['report']['cache_hits']} hit / "
                  f"{best['report']['cache_misses']} miss{extra})")

    rows = configs[0]["rows"]
    for config in configs[1:]:
        if config["rows"] != rows:
            print(f"FAIL: {config['label']} rows differ from serial_cold",
                  file=sys.stderr)
            return 1
    print("rows identical across all configurations")

    warm = next(c for c in configs if c["label"] == "serial_warm")
    traced = next(c for c in configs if c["label"] == "serial_warm_traced")
    overhead_pct = round(
        (traced["seconds"] / warm["seconds"] - 1.0) * 100, 2
    ) if warm["seconds"] > 0 else None
    print(f"tracing overhead on warm sweep: {overhead_pct}% "
          f"({traced['spans']} spans)")
    if args.trace_out:
        print(f"Chrome trace written to {args.trace_out} "
              f"(load at ui.perfetto.dev)")

    serial = configs[0]["seconds"]
    document = {
        "grid": {"benchmarks": benchmarks, "machines": args.machines,
                 "cells": len(rows)},
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "runs": [{k: v for k, v in c.items() if k != "rows"}
                 for c in configs],
        "speedup": {
            c["label"]: round(serial / c["seconds"], 3)
            for c in configs if c["seconds"] > 0
        },
        "traced_overhead_pct": overhead_pct,
    }
    parent = os.path.dirname(args.output)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}: "
          + ", ".join(f"{k}={v}x" for k, v in document["speedup"].items()))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

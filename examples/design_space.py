"""Design-space exploration: where should your transistors go?

The paper's Section 5.2 argues the superscalar/superpipelined choice is a
technology question because the performance is nearly the same.  This
example sweeps the whole (n, m) design space — issue width x pipelining
degree — over the benchmark suite, prints the speedup surface, and shows
how little is left once the degree product passes the available ILP.

It also demonstrates class conflicts: a 4-issue machine with only one
load/store port is compared against the fully duplicated ideal.

Run:  python examples/design_space.py   (takes a minute: 8 benchmarks
compile once; every machine point replays the cached traces)
"""

from repro.analysis.stats import harmonic_mean
from repro.analysis.tables import format_table
from repro.benchmarks import suite
from repro.machine import (
    MachineConfig,
    ideal_superscalar,
    superscalar_with_class_conflicts,
)
from repro.isa.opcodes import InstrClass
from repro.sim import simulate


def machine(n: int, m: int) -> MachineConfig:
    return MachineConfig(
        name=f"n{n}m{m}",
        issue_width=n,
        superpipeline_degree=m,
        latencies={k: m for k in InstrClass},
    )


def main() -> None:
    print("running the eight-benchmark suite once...")
    traces = {
        b.name: suite.run_benchmark(b).trace for b in suite.all_benchmarks()
    }

    print("\nspeedup over the base machine, harmonic mean of the suite")
    widths = (1, 2, 3, 4)
    degrees = (1, 2, 3, 4)
    rows = []
    for m in degrees:
        row = [f"m={m}"]
        for n in widths:
            cfg = machine(n, m)
            mean = harmonic_mean(
                [simulate(t, cfg).parallelism for t in traces.values()]
            )
            row.append(mean)
        rows.append(row)
    print(format_table(["degree \\ width"] + [f"n={n}" for n in widths], rows))
    print(
        "\nReading the surface: moving diagonally (n*m up) stops paying"
        "\nonce n*m exceeds the suite's available parallelism (~2)."
    )

    print("\nclass conflicts: 4-issue with limited load/store ports")
    rows = []
    for n_mem in (1, 2, 4):
        cfg = superscalar_with_class_conflicts(4, n_mem_units=n_mem)
        mean = harmonic_mean(
            [simulate(t, cfg).parallelism for t in traces.values()]
        )
        rows.append([f"{n_mem} port(s)", mean])
    ideal = harmonic_mean(
        [simulate(t, ideal_superscalar(4)).parallelism
         for t in traces.values()]
    )
    rows.append(["ideal (no conflicts)", ideal])
    print(format_table(["memory ports", "harmonic-mean speedup"], rows))


if __name__ == "__main__":
    main()

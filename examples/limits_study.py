"""What the paper's model holds fixed: a study of its assumptions.

Jouppi & Wall's model assumes perfect branch prediction, in-order issue
with compile-time scheduling, and ignores caches.  Each assumption is a
dial this library can turn:

1. branch_policy="stall" removes the prediction assumption (Riseman &
   Foster's control-flow inhibition);
2. simulate_out_of_order() grants the hardware run-time reordering,
   register renaming and perfect memory disambiguation — the machine
   the paper argued was not worth building (and that Wall's own 1991
   limits study later quantified);
3. the instruction-cache model prices the paper's Section 4.4 caveat
   about unrolled code outgrowing the cache.

Run:  python examples/limits_study.py
"""

from repro.analysis.stats import harmonic_mean
from repro.analysis.tables import format_table
from repro.benchmarks import suite
from repro.machine import ideal_superscalar
from repro.sim import (
    CacheConfig,
    dataflow_limit,
    simulate,
    simulate_out_of_order,
    simulate_with_icache,
)


def main() -> None:
    cfg = ideal_superscalar(8)
    print("running the suite once (traces are cached)...")
    traces = {
        b.name: suite.run_benchmark(b).trace for b in suite.all_benchmarks()
    }

    print("\n1. branch prediction: perfect (paper) vs stall-until-resolved")
    rows = []
    for name, trace in traces.items():
        p = simulate(trace, cfg).parallelism
        s = simulate(trace, cfg.with_branch_policy("stall")).parallelism
        rows.append([name, p, s])
    print(format_table(["benchmark", "perfect", "stall"], rows))

    print("\n2. issue model: in-order+scheduling vs out-of-order windows")
    rows = [["in-order + compile-time scheduling",
             harmonic_mean(simulate(t, cfg).parallelism
                           for t in traces.values())]]
    for window in (4, 16, 64):
        rows.append([
            f"out-of-order, window {window}",
            harmonic_mean(
                simulate_out_of_order(t, cfg, window).parallelism
                for t in traces.values()
            ),
        ])
    rows.append([
        "dataflow limit (oracle)",
        harmonic_mean(
            dataflow_limit(t).parallelism for t in traces.values()
        ),
    ])
    print(format_table(["model", "harmonic-mean ILP"], rows))
    print(
        "  The 2.4x jump needs renaming, cross-branch lookahead AND\n"
        "  perfect memory disambiguation — none of which the paper's\n"
        "  1989 hardware budget could buy.  Within the paper's own\n"
        "  constraints (in-order, no renaming), compile-time scheduling\n"
        "  is indeed 'almost as good' as run-time reordering."
    )

    print("\n3. instruction cache vs code expansion (whet example)")
    cache = CacheConfig(size_words=256, line_words=4, miss_penalty=20)
    rows = []
    for name in ("whet", "linpack"):
        trace = traces[name]
        ideal = simulate(trace, cfg)
        cached = simulate_with_icache(trace, cfg, cache)
        rows.append([
            name,
            ideal.parallelism,
            ideal.instructions / cached.timing.base_cycles,
            cached.miss_rate * 100.0,
        ])
    print(format_table(
        ["benchmark", "ILP (ideal)", "ILP (256-word icache)",
         "fetch miss %"], rows,
    ))


if __name__ == "__main__":
    main()

"""Quickstart: compile a Tin program, run it, and measure its ILP.

This walks the full pipeline the library provides:

1. write a small program in Tin (the library's mini-language);
2. compile it with the optimizing compiler;
3. execute it on the functional simulator to get a dynamic trace;
4. replay the trace on several machine descriptions and compare.

Run:  python examples/quickstart.py
"""

from repro import compile_source
from repro.analysis.tables import format_table
from repro.machine import (
    base_machine,
    cray1,
    ideal_superscalar,
    multititan,
    superpipelined,
)
from repro.opt import CompilerOptions, OptLevel
from repro.sim import run, simulate

SOURCE = """
# dot product plus a reduction tail, in Tin
var xs: float[64];
var ys: float[64];

proc dot(n: int): float {
    var i: int;
    var acc: float;
    acc = 0.0;
    for i = 0 to n - 1 {
        acc = acc + xs[i] * ys[i];
    }
    return acc;
}

proc main(): int {
    var i: int;
    for i = 0 to 63 {
        xs[i] = float(i) * 0.25;
        ys[i] = float(63 - i) * 0.5;
    }
    return int(dot(64));
}
"""


def main() -> None:
    print("compiling at every optimization level...")
    rows = []
    for level in OptLevel:
        options = CompilerOptions(opt_level=level)
        program = compile_source(SOURCE, options)
        result = run(program)
        ilp = simulate(result.trace, ideal_superscalar(64)).parallelism
        rows.append(
            [f"O{int(level)} ({level.name.lower()})", result.value,
             result.instructions, ilp]
        )
    print(format_table(
        ["level", "result", "dynamic instrs", "available ILP"], rows
    ))

    print("\nreplaying the fully optimized trace on different machines...")
    program = compile_source(SOURCE, CompilerOptions())
    trace = run(program).trace
    rows = []
    for config in (
        base_machine(),
        ideal_superscalar(2),
        ideal_superscalar(4),
        superpipelined(2),
        superpipelined(4),
        multititan(),
        cray1(),
    ):
        timing = simulate(trace, config)
        rows.append([config.name, timing.base_cycles, timing.parallelism])
    print(format_table(["machine", "base cycles", "speedup vs base"], rows))

    print(
        "\nNote the paper's headline: the superscalar and superpipelined"
        "\nmachines of equal degree perform almost identically, and past"
        "\ndegree ~3 neither helps much — available ILP is the ceiling."
    )


if __name__ == "__main__":
    main()

"""Loop unrolling study: naive vs careful, and register pressure.

Reproduces the Figure 4-6 methodology on a standalone kernel so the
mechanics are easy to see: a DAXPY loop is compiled with naive and
careful unrolling at several factors, under small and large temporary
register files, and the scheduler's resulting ILP is measured.

Careful unrolling = reduction reassociation + affine store/load
disambiguation + interprocedural alias analysis (Fortran-style argument
independence), exactly the three things the paper did by hand.

Run:  python examples/unrolling_study.py
"""

from repro import compile_source
from repro.analysis.tables import format_table, line_chart
from repro.isa.registers import RegisterFileSpec
from repro.machine import ideal_superscalar
from repro.opt import CompilerOptions
from repro.sim import run, simulate

SOURCE = """
var xs: float[256];
var ys: float[256];

proc daxpy(n: int, a: float, src: float[], dst: float[]) {
    var i: int;
    for i = 0 to n - 1 {
        dst[i] = dst[i] + a * src[i];
    }
}

proc main(): int {
    var i, rep: int;
    for i = 0 to 255 {
        xs[i] = float(i) * 0.01;
        ys[i] = 1.0;
    }
    for rep = 1 to 4 {
        daxpy(256, 0.5, xs, ys);
    }
    return int(ys[255] * 100.0);
}
"""


def measure(factor: int, careful: bool, n_temp: int) -> float:
    options = CompilerOptions(
        unroll=factor,
        careful=careful,
        regfile=RegisterFileSpec(n_temp=n_temp, n_home=26),
    )
    program = compile_source(SOURCE, options)
    result = run(program)
    return simulate(result.trace, ideal_superscalar(64)).parallelism


def main() -> None:
    factors = (1, 2, 4, 6, 10)
    series = {}
    rows = []
    for careful in (False, True):
        for n_temp in (16, 40):
            label = f"{'careful' if careful else 'naive'}/t{n_temp}"
            points = []
            for factor in factors:
                points.append((factor, measure(factor, careful, n_temp)))
            series[label] = points
            rows.append([label] + [p[1] for p in points])
            print(f"measured {label}")
    print()
    print(format_table(
        ["mode/temps"] + [f"u={f}" for f in factors], rows
    ))
    print()
    print(line_chart(
        series, title="DAXPY parallelism vs unroll factor",
        x_label="unroll factor", y_label="ILP",
    ))
    print(
        "\nThe paper's Figure 4-6 shape: naive unrolling flattens (false"
        "\nconflicts between copies serialize the schedule); careful"
        "\nunrolling keeps climbing, and more temporaries help it climb"
        "\nfurther before register reuse reintroduces dependences."
    )


if __name__ == "__main__":
    main()

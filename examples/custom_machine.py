"""Evaluate a custom machine description, like the paper's Section 3
interface: per-class latencies, functional units with issue latency and
multiplicity, an issue-width limit — then watch real code run on it.

The example machine is a hypothetical "budget superscalar": two-wide
issue, one pipelined multiplier shared by everything, loads taking two
cycles, floating point three.  Its pipeline diagram is rendered for a
small code fragment, then the eight-benchmark suite is measured.

Run:  python examples/custom_machine.py
"""

from repro.analysis.pipeviz import render_pipeline
from repro.analysis.stats import harmonic_mean
from repro.analysis.tables import format_table
from repro.benchmarks import suite
from repro.isa import InstrClass
from repro.machine import MachineConfig, machine_degree, unit
from repro.sim import simulate

K = InstrClass

BUDGET = MachineConfig(
    name="budget-superscalar",
    issue_width=2,
    latencies={
        K.LOGICAL: 1, K.SHIFT: 1, K.ADDSUB: 1, K.MOVE: 1, K.MISC: 1,
        K.INTMUL: 4, K.INTDIV: 16,
        K.LOAD: 2, K.STORE: 1, K.BRANCH: 1,
        K.FPADD: 3, K.FPMUL: 4, K.FPDIV: 16, K.FPCVT: 2,
    },
    units=(
        unit("alu", [K.LOGICAL, K.SHIFT, K.ADDSUB, K.MOVE, K.MISC,
                     K.BRANCH], multiplicity=2),
        unit("mul", [K.INTMUL, K.INTDIV, K.FPMUL, K.FPDIV],
             issue_latency=2),
        unit("fpu", [K.FPADD, K.FPCVT]),
        unit("mem", [K.LOAD, K.STORE]),
    ),
)


def main() -> None:
    print(f"machine: {BUDGET.name}")
    print(f"average degree of superpipelining: {machine_degree(BUDGET):.2f}")
    print("(the paper's metric: >1 means latency already exposes ILP needs)")

    print("\npipeline diagram for 8 independent instructions:")
    from repro.analysis.pipeviz import demo_trace

    print(render_pipeline(demo_trace("independent", 8), BUDGET))

    print("\nmeasuring the suite (compiled and scheduled for this machine)...")
    rows = []
    speedups = []
    for bench in suite.all_benchmarks():
        options = suite.default_options(bench, schedule_for=BUDGET)
        result = suite.run_benchmark(bench, options)
        timing = simulate(result.trace, BUDGET)
        rows.append([bench.name, result.instructions, timing.base_cycles,
                     timing.parallelism])
        speedups.append(timing.parallelism)
    print(format_table(
        ["benchmark", "instructions", "cycles", "instr/cycle"], rows
    ))
    print(f"\nharmonic mean: {harmonic_mean(speedups):.3f} instructions/cycle")
    print(
        "\nWith real latencies and shared units, the 2-wide machine"
        "\nextracts well under 2 instructions per cycle — the available"
        "\nparallelism is already being spent covering operation latency."
    )


if __name__ == "__main__":
    main()

"""Regenerate every table and figure of the paper in one run.

Prints each exhibit (ASCII table + chart) in paper order and writes them
under results/.  This is the library's "reproduce the paper" button; the
same drivers are exercised one-by-one by ``pytest benchmarks/``.

Run:  python examples/paper_figures.py          (full sweep, ~5 minutes)
      python examples/paper_figures.py fig4-5   (one exhibit)
"""

import pathlib
import sys
import time

from repro.analysis.experiments import ALL_EXHIBITS

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def main(argv: list[str]) -> int:
    wanted = argv[1:] or list(ALL_EXHIBITS)
    unknown = [name for name in wanted if name not in ALL_EXHIBITS]
    if unknown:
        print(f"unknown exhibits: {unknown}")
        print(f"available: {', '.join(ALL_EXHIBITS)}")
        return 1
    RESULTS.mkdir(exist_ok=True)
    for name in wanted:
        t0 = time.time()
        exhibit = ALL_EXHIBITS[name]()
        text = str(exhibit)
        print(text)
        print(f"[{name} regenerated in {time.time() - t0:.1f}s]\n")
        out = RESULTS / f"{exhibit.ident.replace('.', '_')}.txt"
        out.write_text(text + "\n", encoding="utf-8")
    print(f"exhibits written under {RESULTS}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
